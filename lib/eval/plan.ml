(* Query plans: the annotated-tree representation, cost-based access-path
   selection, cost estimation, a normalized plan fingerprint, and
   rendering.

   The paper's Section 8.2 evaluation strategy is fixed (bottom-up,
   sorted pipeline), so a "plan" here is the query tree annotated with
   costs — plus, since the planner became cost-based, one access-path
   decision per sub-scope atomic: index probe + prefix filter + sort,
   dn-index subtree scan, or a result-cache hit, each priced in page
   reads/writes before any postings are materialized.  This module holds
   everything about plans that does not need the engine — [estimate] and
   [choose_path] work from a pager, an instance and optional index /
   cache / calibration handles, so both [Explain] (above the engine) and
   [Engine] itself (execution and the query journal) price paths with
   the same model and cannot disagree. *)

(* --- Access paths ------------------------------------------------------------ *)

type path = Index | Scan | Cached

let path_name = function Index -> "index" | Scan -> "scan" | Cached -> "cache"

type alt = {
  alt_path : path;
  alt_rows : int;  (* estimated output cardinality on this path *)
  alt_reads : int;  (* estimated page reads to produce it *)
  alt_writes : int;  (* estimated output writes (a pipeline saves them) *)
}

type choice = { chosen : alt; rejected : alt list }

type node = {
  label : string;  (* operator name *)
  detail : string;  (* filter / aggregate text *)
  est_rows : int;
  est_io : int;  (* = est_reads + est_writes *)
  est_reads : int;
  est_writes : int;
  est_writes_saved : int;  (* writes a streaming pipeline avoids *)
  actual_rows : int option;
  actual_io : int option;
  actual_ns : int option;  (* wall-clock, excluding children *)
  actual_alloc : int option;  (* bytes allocated, excluding children *)
  access : choice option;  (* the atomic's access-path decision, if any *)
  children : node list;
}

(* Assemble a node from the read/write decomposition; [est_io] stays the
   sum so existing consumers keep one number. *)
let mk ?access ~label ~detail ~est_rows ~est_reads ~est_writes
    ~est_writes_saved children =
  {
    label;
    detail;
    est_rows;
    est_io = est_reads + est_writes;
    est_reads;
    est_writes;
    est_writes_saved = max 0 est_writes_saved;
    actual_rows = None;
    actual_io = None;
    actual_ns = None;
    actual_alloc = None;
    access;
    children;
  }

(* --- Cardinality estimation: selectivity fallback ----------------------------- *)

(* Crude textbook selectivities, the fallback when no index can be
   probed; the point is order-of-magnitude cost attribution, not a real
   optimizer. *)
let filter_selectivity = function
  | Afilter.Present _ -> 0.6
  | Afilter.Str_eq (a, _) when String.equal a Schema.object_class -> 0.4
  | Afilter.Str_eq _ -> 0.1
  | Afilter.Substr _ -> 0.2
  | Afilter.Int_cmp (_, Afilter.Eq, _) -> 0.05
  | Afilter.Int_cmp _ -> 0.33
  | Afilter.Dn_eq _ -> 0.01

let pages pager n = Pager.pages_of pager n

(* --- Normalized plan fingerprint ---------------------------------------------- *)

(* The evaluation strategy being fixed, the plan of a query is its
   operator tree; the fingerprint is that tree with literal constants
   elided, so the journal groups "the same query with different
   constants" under one plan. *)

let filter_shape = function
  | Afilter.Present a -> a ^ "=*"
  | Afilter.Str_eq (a, _) -> a ^ "=?"
  | Afilter.Substr (a, _) -> a ^ "~?"
  | Afilter.Int_cmp (a, op, _) ->
      a
      ^ (match op with
        | Afilter.Lt -> "<"
        | Afilter.Le -> "<="
        | Afilter.Eq -> "="
        | Afilter.Ge -> ">="
        | Afilter.Gt -> ">")
      ^ "?"
  | Afilter.Dn_eq (a, _) -> a ^ "=dn:?"

let agg_shape = function None -> "" | Some _ -> ";agg"

let rec shape (q : Ast.t) =
  match q with
  | Ast.Atomic a ->
      Printf.sprintf "atomic(%s;%s;%s)"
        (Dn.to_string a.Ast.base)
        (Ast.scope_to_string a.Ast.scope)
        (filter_shape a.Ast.filter)
  | Ast.And (q1, q2) -> "&(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Or (q1, q2) -> "|(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Diff (q1, q2) -> "-(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Hier (op, q1, q2, agg) ->
      Qprinter.hier_op_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ agg_shape agg ^ ")"
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      Qprinter.hier_op3_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ "," ^ shape q3 ^ agg_shape agg ^ ")"
  | Ast.Gsel (q1, f) ->
      "g(" ^ shape q1 ^ ";" ^ Qprinter.agg_filter_to_string f ^ ")"
  | Ast.Eref (op, q1, q2, attr, agg) ->
      Qprinter.ref_op_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ ";" ^ attr ^ agg_shape agg ^ ")"

(* FNV-1a, 64-bit: tiny, stable across runs (unlike Hashtbl.hash no
   promise is broken by a compiler upgrade changing it: the constants
   are spelled out here). *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fingerprint q = Printf.sprintf "%016Lx" (fnv64 (shape q))

(* --- Access-path selection ------------------------------------------------------ *)

(* The key range an integer comparison probes (shared with the engine's
   index lookup, so pricing and execution agree on what the index path
   does). *)
let int_bounds op k =
  match op with
  | Afilter.Lt -> (min_int, k - 1)
  | Afilter.Le -> (min_int, k)
  | Afilter.Eq -> (k, k)
  | Afilter.Ge -> (k, max_int)
  | Afilter.Gt -> (k + 1, max_int)

(* The component an indexed substring filter probes with: the longest
   available one (ties prefer the initial component, whose exact-trie
   prefix walk is cheaper than the suffix trie).  [true] means anchored
   at the start.  Probing with anything shorter than the longest
   component inflates the candidate set the full pattern then has to
   filter back down. *)
let substr_probe (pat : Afilter.substring) =
  let components =
    (match pat.Afilter.initial with Some s -> [ (s, true) ] | None -> [])
    @ List.map (fun s -> (s, false)) pat.Afilter.middles
    @ (match pat.Afilter.final with Some s -> [ (s, false) ] | None -> [])
  in
  List.fold_left
    (fun best (s, anchored) ->
      match best with
      | Some (b, _) when String.length b >= String.length s -> best
      | _ -> Some (s, anchored))
    None components

(* How the index path's candidates are collected, which decides the
   collection cost beyond the probe's descent. *)
type probe_kind = K_btree | K_exact | K_prefix | K_substr

(* Cardinality of the index path's candidate set, by probing the
   attribute index's maintained counters — O(log n) / O(|pattern|),
   no postings materialized.  [None] when the filter has no indexable
   access path. *)
let index_count idx (f : Afilter.t) =
  match f with
  | Afilter.Present _ -> None
  | Afilter.Int_cmp (a, op, k) ->
      let lo, hi = int_bounds op k in
      Some (Attr_index.count_int_range idx a ~lo ~hi, K_btree)
  | Afilter.Str_eq (a, s) -> Some (Attr_index.count_str_eq idx a s, K_exact)
  | Afilter.Dn_eq (a, d) -> Some (Attr_index.count_dn_eq idx a d, K_exact)
  | Afilter.Substr (a, pat) -> (
      match substr_probe pat with
      | None -> None
      | Some (comp, true) -> Some (Attr_index.count_prefix idx a comp, K_prefix)
      | Some (comp, false) ->
          Some (Attr_index.count_substring idx a comp, K_substr))

(* Apply a calibration store's learned corrections to an estimated
   alternative: per-path classes ("atomic:index", "atomic:scan") first,
   the plain "atomic" class as fallback, nothing when there is no
   support.  This is where self-tuning has leverage — e.g. the suffix
   trie's collection really costs more than the [c]-reads proxy below,
   the reads bias on "atomic:index" learns the multiplier, and a
   mid-selectivity substring flips from index to scan. *)
let calibrate pager calib alt =
  match calib with
  | None -> alt
  | Some st ->
      let cls = "atomic:" ^ path_name alt.alt_path in
      let lookup f =
        match f st ~op:cls ~rows:alt.alt_rows with
        | Some _ as b -> b
        | None -> f st ~op:"atomic" ~rows:alt.alt_rows
      in
      let corrected v = function
        | None -> v
        | Some b -> int_of_float ((float_of_int v *. b) +. 0.5)
      in
      let rows = corrected alt.alt_rows (lookup Planstats.bias_card) in
      let reads = corrected alt.alt_reads (lookup Planstats.bias_reads) in
      { alt with alt_rows = rows; alt_reads = reads; alt_writes = pages pager rows }

(* Price the access paths of one sub-scope atomic and pick the cheapest
   (or the forced one).  The index probes consult maintained counters —
   they are this system's optimizer statistics, so their descents are
   refunded from the pager's read counter: planning is free, execution
   pays only for the path actually taken, and a forced-path run costs
   exactly what the auto-chosen run costs on the same path. *)
let choose_path ~pager ~instance ?attr_index ?cache ?calib
    ?(streaming = false) ?force (a : Ast.atomic) =
  let scope_size =
    match a.Ast.scope with
    | Ast.Base -> 1
    | Ast.One | Ast.Sub -> List.length (Instance.subtree instance a.Ast.base)
  in
  let sel_rows =
    max 0
      (int_of_float
         (float_of_int scope_size *. filter_selectivity a.Ast.filter))
  in
  let scan =
    calibrate pager calib
      {
        alt_path = Scan;
        alt_rows = sel_rows;
        alt_reads = 1 + pages pager scope_size;
        alt_writes = pages pager sel_rows;
      }
  in
  let index =
    match (a.Ast.scope, attr_index) with
    | (Ast.Base | Ast.One), _ | _, None -> None
    | Ast.Sub, Some idx -> (
        let stats = Pager.stats pager in
        let r0 = stats.Io_stats.page_reads in
        let counted = index_count idx a.Ast.filter in
        let descent = stats.Io_stats.page_reads - r0 in
        stats.Io_stats.page_reads <- r0;
        match counted with
        | None -> None
        | Some (c, kind) ->
            (* candidates are instance-wide; the scope prefix filter
               keeps roughly the subtree's share, and a component probe
               (substring patterns) overshoots the full pattern *)
            let frac =
              float_of_int scope_size
              /. float_of_int (max 1 (Instance.size instance))
            in
            let exactness =
              match kind with
              | K_btree | K_exact -> 1.0
              | K_prefix | K_substr -> 0.5
            in
            let rows =
              min c
                (int_of_float ((float_of_int c *. frac *. exactness) +. 0.5))
            in
            (* the lookup re-walks the probe's descent, then collects:
               half-full order-16 leaves for the B-tree, the terminal
               list for exact tries (already in hand), about one node
               per payload for prefix / suffix subtree walks; reading
               the candidate postings bills like any scan *)
            let descent =
              match kind with K_btree -> max 1 (descent / 2) | _ -> descent
            in
            let collect =
              match kind with
              | K_btree -> (c + 7) / 8
              | K_exact -> 0
              | K_prefix | K_substr -> c
            in
            Some
              (calibrate pager calib
                 {
                   alt_path = Index;
                   alt_rows = rows;
                   alt_reads = descent + collect + pages pager c;
                   alt_writes = pages pager rows;
                 }))
  in
  let cached =
    match (a.Ast.scope, cache) with
    | (Ast.Base | Ast.One), _ | _, None -> None
    | Ast.Sub, Some c -> (
        let q = Ast.Atomic a in
        match
          Cache.peek c ~fingerprint:(fingerprint q)
            ~query:(Qprinter.to_string q)
        with
        | Some arr ->
            (* the cached array re-serves as a resident list: no reads,
               no output write, and the cardinality is exact *)
            Some
              {
                alt_path = Cached;
                alt_rows = Array.length arr;
                alt_reads = 0;
                alt_writes = 0;
              }
        | None -> None)
  in
  let alts = List.filter_map Fun.id [ cached; index; Some scan ] in
  let cost alt = alt.alt_reads + if streaming then 0 else alt.alt_writes in
  let best =
    List.fold_left
      (fun b a -> if cost a < cost b then a else b)
      (List.hd alts) (List.tl alts)
  in
  let chosen =
    match force with
    | None -> best
    | Some p -> (
        (* a forced path that is not available falls back to the best *)
        match List.find_opt (fun alt -> alt.alt_path = p) alts with
        | Some alt -> alt
        | None -> best)
  in
  { chosen; rejected = List.filter (fun alt -> alt != chosen) alts }

(* --- Cost estimation -------------------------------------------------------------- *)

type ctx = {
  c_pager : Pager.t;
  c_instance : Instance.t;
  c_attr_index : Attr_index.t option;
  c_cache : Cache.t option;
  c_calib : Planstats.t option;
  c_streaming : bool;
  c_force : path option;
}

let ctx_choose ctx a =
  choose_path ~pager:ctx.c_pager ~instance:ctx.c_instance
    ?attr_index:ctx.c_attr_index ?cache:ctx.c_cache ?calib:ctx.c_calib
    ~streaming:ctx.c_streaming ?force:ctx.c_force a

let rec estimate_node ctx (q : Ast.t) =
  let pager = ctx.c_pager in
  match q with
  | Ast.Atomic a -> (
      let detail =
        Printf.sprintf "%s ? %s ? %s"
          (Dn.to_string a.Ast.base)
          (Ast.scope_to_string a.Ast.scope)
          (Afilter.to_string a.Ast.filter)
      in
      match a.Ast.scope with
      | Ast.Sub ->
          (* cost-based: the chosen access path prices the node *)
          let choice = ctx_choose ctx a in
          let c = choice.chosen in
          mk ~access:choice ~label:"atomic" ~detail ~est_rows:c.alt_rows
            ~est_reads:c.alt_reads ~est_writes:c.alt_writes
            ~est_writes_saved:c.alt_writes []
      | Ast.Base | Ast.One ->
          let scope_size =
            match a.Ast.scope with
            | Ast.Base -> 1
            | Ast.One | Ast.Sub ->
                List.length (Instance.subtree ctx.c_instance a.Ast.base)
          in
          let est_rows =
            max 0
              (int_of_float
                 (float_of_int scope_size *. filter_selectivity a.Ast.filter))
          in
          (* descent + range scan; streaming skips the output write *)
          mk ~label:"atomic" ~detail ~est_rows
            ~est_reads:(1 + pages pager scope_size)
            ~est_writes:(pages pager est_rows)
            ~est_writes_saved:(pages pager est_rows) [])
  | Ast.And (q1, q2) -> binary ctx "&" q1 q2 (fun n1 n2 -> min n1 n2 / 2)
  | Ast.Or (q1, q2) -> binary ctx "|" q1 q2 (fun n1 n2 -> n1 + n2)
  | Ast.Diff (q1, q2) -> binary ctx "-" q1 q2 (fun n1 _ -> n1 / 2)
  | Ast.Hier (op, q1, q2, agg) ->
      let c1 = estimate_node ctx q1 and c2 = estimate_node ctx q2 in
      let est_rows = c1.est_rows / 2 in
      let p1 = pages pager c1.est_rows in
      (* merged scan + annotation rescan (reads); annotated copy + output
         (writes).  A pipeline skips both writes, unless the aggregate
         filter needs entry sets, which keeps the annotated copy. *)
      mk
        ~label:(Qprinter.hier_op_to_string op)
        ~detail:(agg_detail agg) ~est_rows
        ~est_reads:((2 * p1) + pages pager c2.est_rows)
        ~est_writes:(p1 + pages pager est_rows)
        ~est_writes_saved:
          (pages pager est_rows + (if hier_keeps_annots agg then 0 else p1))
        [ c1; c2 ]
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      let c1 = estimate_node ctx q1
      and c2 = estimate_node ctx q2
      and c3 = estimate_node ctx q3 in
      let est_rows = c1.est_rows / 2 in
      let p1 = pages pager c1.est_rows in
      mk
        ~label:(Qprinter.hier_op3_to_string op)
        ~detail:(agg_detail agg) ~est_rows
        ~est_reads:
          ((2 * p1) + pages pager c2.est_rows + pages pager c3.est_rows)
        ~est_writes:(p1 + pages pager est_rows)
        ~est_writes_saved:
          (pages pager est_rows + (if hier_keeps_annots agg then 0 else p1))
        [ c1; c2; c3 ]
  | Ast.Gsel (q1, f) ->
      let c1 = estimate_node ctx q1 in
      let scans = if Simple_agg.needs_global f then 2 else 1 in
      let est_rows = c1.est_rows / 2 in
      (* A global aggregate consumes its input twice, so a pipeline must
         force a live input resident — charging back one write. *)
      mk ~label:"g"
        ~detail:(Qprinter.agg_filter_to_string f)
        ~est_rows
        ~est_reads:(scans * pages pager c1.est_rows)
        ~est_writes:(pages pager est_rows)
        ~est_writes_saved:
          (pages pager est_rows
          - (if scans > 1 then pages pager c1.est_rows else 0))
        [ c1 ]
  | Ast.Eref (op, q1, q2, attr, agg) ->
      let c1 = estimate_node ctx q1 and c2 = estimate_node ctx q2 in
      let m = 2 (* assumed mean reference fan-out *) in
      let source = match op with Ast.Vd -> c1.est_rows | Ast.Dv -> c2.est_rows in
      let p = max 1 (pages pager (source * m)) in
      let rec log2 n = if n <= 1 then 1 else 1 + log2 (n / 2) in
      let est_rows = c1.est_rows / 2 in
      (* The pair list and its sort are boundaries either way; [vd]
         consumes $1 twice, so streaming forces it resident. *)
      mk
        ~label:(Qprinter.ref_op_to_string op)
        ~detail:
          (attr
          ^ (match agg with
            | None -> ""
            | Some f -> " " ^ Qprinter.agg_filter_to_string f))
        ~est_rows
        ~est_reads:
          ((p * log2 p) + pages pager c1.est_rows + pages pager c2.est_rows)
        ~est_writes:((p * log2 p) + pages pager est_rows)
        ~est_writes_saved:
          (pages pager est_rows
          - (match op with Ast.Vd -> pages pager c1.est_rows | Ast.Dv -> 0))
        [ c1; c2 ]

and binary ctx label q1 q2 rows =
  let c1 = estimate_node ctx q1 and c2 = estimate_node ctx q2 in
  let est_rows = rows c1.est_rows c2.est_rows in
  mk ~label ~detail:"" ~est_rows
    ~est_reads:
      (Pager.pages_of ctx.c_pager c1.est_rows
      + Pager.pages_of ctx.c_pager c2.est_rows)
    ~est_writes:(Pager.pages_of ctx.c_pager est_rows)
    ~est_writes_saved:(Pager.pages_of ctx.c_pager est_rows)
    [ c1; c2 ]

and agg_detail = function
  | None -> "count($2) > 0"
  | Some f -> Qprinter.agg_filter_to_string f

(* Does the hierarchical operator's finish phase keep a materialized
   annotated copy even when streaming?  Only when the filter aggregates
   over entry sets (the copy is rescanned to collect global values). *)
and hier_keeps_annots agg =
  Hs_agg.has_entry_set_aggs (Option.value ~default:Ast.has_witness agg)

(* The root's result is materialized in every mode (it is what the
   caller scans), so its own output write is never saved. *)
let estimate ~pager ~instance ?attr_index ?cache ?calib ?(streaming = false)
    ?force q =
  let ctx =
    {
      c_pager = pager;
      c_instance = instance;
      c_attr_index = attr_index;
      c_cache = cache;
      c_calib = calib;
      c_streaming = streaming;
      c_force = force;
    }
  in
  let n = estimate_node ctx q in
  let root_out = pages pager n.est_rows in
  { n with est_writes_saved = max 0 (n.est_writes_saved - root_out) }

(* --- Cardinality-ordered boolean merges --------------------------------------- *)

(* Reorder the operands of associative-commutative boolean merges
   ascending by estimated cardinality: maximal [And] / [Or] chains are
   flattened, each operand estimated (atomics through the same
   calibrated path probes the estimator uses, so "small" means what the
   chosen access path will deliver), sorted smallest-first and rebuilt
   left-deep.  Ascending [And] chains drive every intermediate toward
   the most selective operand's size — fewer comparisons always, fewer
   boundary writes when materialized ([est_writes_saved] is exactly the
   part streaming already avoids).  [Diff] and the hierarchical
   operators are order-sensitive: their operands only recurse. *)
let reorder ~pager ~instance ?attr_index ?cache ?calib ?(streaming = false) q =
  let ctx =
    {
      c_pager = pager;
      c_instance = instance;
      c_attr_index = attr_index;
      c_cache = cache;
      c_calib = calib;
      c_streaming = streaming;
      c_force = None;
    }
  in
  let rec est (q : Ast.t) =
    match q with
    | Ast.Atomic a -> (
        match a.Ast.scope with
        | Ast.Sub -> (q, (ctx_choose ctx a).chosen.alt_rows)
        | Ast.Base | Ast.One ->
            let scope_size =
              match a.Ast.scope with
              | Ast.Base -> 1
              | _ -> List.length (Instance.subtree instance a.Ast.base)
            in
            ( q,
              max 0
                (int_of_float
                   (float_of_int scope_size
                   *. filter_selectivity a.Ast.filter)) ))
    | Ast.And _ -> chain `And q
    | Ast.Or _ -> chain `Or q
    | Ast.Diff (q1, q2) ->
        let q1, r1 = est q1 in
        let q2, _ = est q2 in
        (Ast.Diff (q1, q2), r1 / 2)
    | Ast.Hier (op, q1, q2, agg) ->
        let q1, r1 = est q1 in
        let q2, _ = est q2 in
        (Ast.Hier (op, q1, q2, agg), r1 / 2)
    | Ast.Hier3 (op, q1, q2, q3, agg) ->
        let q1, r1 = est q1 in
        let q2, _ = est q2 in
        let q3, _ = est q3 in
        (Ast.Hier3 (op, q1, q2, q3, agg), r1 / 2)
    | Ast.Gsel (q1, f) ->
        let q1, r1 = est q1 in
        (Ast.Gsel (q1, f), r1 / 2)
    | Ast.Eref (op, q1, q2, attr, agg) ->
        let q1, r1 = est q1 in
        let q2, _ = est q2 in
        (Ast.Eref (op, q1, q2, attr, agg), r1 / 2)
  and chain kind q =
    (* operands of the maximal chain, in source order *)
    let rec operands q acc =
      match (kind, q) with
      | `And, Ast.And (a, b) -> operands a (operands b acc)
      | `Or, Ast.Or (a, b) -> operands a (operands b acc)
      | _ -> q :: acc
    in
    let sorted =
      List.stable_sort
        (fun (_, r1) (_, r2) -> Int.compare r1 r2)
        (List.map est (operands q []))
    in
    match sorted with
    | [] -> assert false
    | first :: rest ->
        List.fold_left
          (fun (acc, racc) (qi, ri) ->
            match kind with
            | `And -> (Ast.And (acc, qi), min racc ri / 2)
            | `Or -> (Ast.Or (acc, qi), racc + ri))
          first rest
  in
  fst (est q)

(* --- Rendering --------------------------------------------------------------- *)

let pp_alt ppf a =
  Fmt.pf ppf "%s rows=%d reads=%d+%dw" (path_name a.alt_path) a.alt_rows
    a.alt_reads a.alt_writes

let rec pp_node ppf (n : node) =
  let opt = function None -> "-" | Some v -> string_of_int v in
  let time = function None -> "-" | Some ns -> Mclock.ns_to_string ns in
  let bytes = function
    | None -> "-"
    | Some b -> Fmt.str "%a" Trace.pp_bytes b
  in
  Fmt.pf ppf
    "@[<v2>%s%s  [rows est=%d got=%s | io est=%d (%dr+%dw, saves %dw) \
     got=%s | alloc=%s | t=%s]%a%a@]"
    n.label
    (if n.detail = "" then "" else " " ^ n.detail)
    n.est_rows (opt n.actual_rows) n.est_io n.est_reads n.est_writes
    n.est_writes_saved (opt n.actual_io)
    (bytes n.actual_alloc)
    (time n.actual_ns)
    (fun ppf access ->
      match access with
      | None -> ()
      | Some ch ->
          Fmt.pf ppf "@,path %a%a" pp_alt ch.chosen
            (fun ppf rejected ->
              List.iter (fun a -> Fmt.pf ppf "  !%a" pp_alt a) rejected)
            ch.rejected)
    n.access
    (fun ppf children ->
      List.iter (fun c -> Fmt.pf ppf "@,%a" pp_node c) children)
    n.children

let pp ppf n = Fmt.pf ppf "%a@." pp_node n

let to_string n = Fmt.str "%a" pp_node n

let total_actual_io n =
  let rec sum n =
    Option.value ~default:0 n.actual_io
    + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_actual_ns n =
  let rec sum n =
    Option.value ~default:0 n.actual_ns
    + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_est_writes_saved n =
  let rec sum n =
    n.est_writes_saved + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_est_reads n =
  let rec sum n =
    n.est_reads + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_est_writes n =
  let rec sum n =
    n.est_writes + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

(* Preorder flattening with depths, the same shape [Qlog.ops_of_span]
   lifts from a span tree — the engine pairs the two row lists to join
   estimates onto the journal's per-operator actuals. *)
let flatten n =
  let rec go depth n acc =
    List.fold_left
      (fun acc c -> go (depth + 1) c acc)
      ((n, depth) :: acc) n.children
  in
  List.rev (go 0 n [])
