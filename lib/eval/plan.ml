(* Query plans: the annotated-tree representation, cost estimation, a
   normalized plan fingerprint, and rendering.

   The paper's Section 8.2 evaluation strategy is fixed (bottom-up,
   sorted pipeline), so a "plan" here is the query tree annotated with
   costs.  This module holds everything about plans that does not need
   the engine — [estimate] works from a pager and an instance, so both
   [Explain] (above the engine) and [Engine] itself (the query journal
   renders the estimated plan for slow-query captures) can use it
   without a dependency cycle. *)

type node = {
  label : string;  (* operator name *)
  detail : string;  (* filter / aggregate text *)
  est_rows : int;
  est_io : int;  (* = est_reads + est_writes *)
  est_reads : int;
  est_writes : int;
  est_writes_saved : int;  (* writes a streaming pipeline avoids *)
  actual_rows : int option;
  actual_io : int option;
  actual_ns : int option;  (* wall-clock, excluding children *)
  actual_alloc : int option;  (* bytes allocated, excluding children *)
  children : node list;
}

(* Assemble a node from the read/write decomposition; [est_io] stays the
   sum so existing consumers keep one number. *)
let mk ~label ~detail ~est_rows ~est_reads ~est_writes ~est_writes_saved
    children =
  {
    label;
    detail;
    est_rows;
    est_io = est_reads + est_writes;
    est_reads;
    est_writes;
    est_writes_saved = max 0 est_writes_saved;
    actual_rows = None;
    actual_io = None;
    actual_ns = None;
    actual_alloc = None;
    children;
  }

(* --- Cardinality estimation ---------------------------------------------- *)

(* Crude textbook selectivities; the point is order-of-magnitude cost
   attribution, not a real optimizer. *)
let filter_selectivity = function
  | Afilter.Present _ -> 0.6
  | Afilter.Str_eq (a, _) when String.equal a Schema.object_class -> 0.4
  | Afilter.Str_eq _ -> 0.1
  | Afilter.Substr _ -> 0.2
  | Afilter.Int_cmp (_, Afilter.Eq, _) -> 0.05
  | Afilter.Int_cmp _ -> 0.33
  | Afilter.Dn_eq _ -> 0.01

let pages pager n = Pager.pages_of pager n

let rec estimate_node ~pager ~instance (q : Ast.t) =
  match q with
  | Ast.Atomic a ->
      let scope_size =
        match a.Ast.scope with
        | Ast.Base -> 1
        | Ast.One | Ast.Sub -> List.length (Instance.subtree instance a.Ast.base)
      in
      let est_rows =
        max 0
          (int_of_float
             (float_of_int scope_size *. filter_selectivity a.Ast.filter))
      in
      (* descent + range scan; streaming skips the output write *)
      mk ~label:"atomic"
        ~detail:
          (Printf.sprintf "%s ? %s ? %s"
             (Dn.to_string a.Ast.base)
             (Ast.scope_to_string a.Ast.scope)
             (Afilter.to_string a.Ast.filter))
        ~est_rows
        ~est_reads:(1 + pages pager scope_size)
        ~est_writes:(pages pager est_rows)
        ~est_writes_saved:(pages pager est_rows) []
  | Ast.And (q1, q2) ->
      binary ~pager ~instance "&" q1 q2 (fun n1 n2 -> min n1 n2 / 2)
  | Ast.Or (q1, q2) -> binary ~pager ~instance "|" q1 q2 (fun n1 n2 -> n1 + n2)
  | Ast.Diff (q1, q2) -> binary ~pager ~instance "-" q1 q2 (fun n1 _ -> n1 / 2)
  | Ast.Hier (op, q1, q2, agg) ->
      let c1 = estimate_node ~pager ~instance q1
      and c2 = estimate_node ~pager ~instance q2 in
      let est_rows = c1.est_rows / 2 in
      let p1 = pages pager c1.est_rows in
      (* merged scan + annotation rescan (reads); annotated copy + output
         (writes).  A pipeline skips both writes, unless the aggregate
         filter needs entry sets, which keeps the annotated copy. *)
      mk
        ~label:(Qprinter.hier_op_to_string op)
        ~detail:(agg_detail agg) ~est_rows
        ~est_reads:((2 * p1) + pages pager c2.est_rows)
        ~est_writes:(p1 + pages pager est_rows)
        ~est_writes_saved:
          (pages pager est_rows + (if hier_keeps_annots agg then 0 else p1))
        [ c1; c2 ]
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      let c1 = estimate_node ~pager ~instance q1
      and c2 = estimate_node ~pager ~instance q2
      and c3 = estimate_node ~pager ~instance q3 in
      let est_rows = c1.est_rows / 2 in
      let p1 = pages pager c1.est_rows in
      mk
        ~label:(Qprinter.hier_op3_to_string op)
        ~detail:(agg_detail agg) ~est_rows
        ~est_reads:
          ((2 * p1) + pages pager c2.est_rows + pages pager c3.est_rows)
        ~est_writes:(p1 + pages pager est_rows)
        ~est_writes_saved:
          (pages pager est_rows + (if hier_keeps_annots agg then 0 else p1))
        [ c1; c2; c3 ]
  | Ast.Gsel (q1, f) ->
      let c1 = estimate_node ~pager ~instance q1 in
      let scans = if Simple_agg.needs_global f then 2 else 1 in
      let est_rows = c1.est_rows / 2 in
      (* A global aggregate consumes its input twice, so a pipeline must
         force a live input resident — charging back one write. *)
      mk ~label:"g"
        ~detail:(Qprinter.agg_filter_to_string f)
        ~est_rows
        ~est_reads:(scans * pages pager c1.est_rows)
        ~est_writes:(pages pager est_rows)
        ~est_writes_saved:
          (pages pager est_rows
          - (if scans > 1 then pages pager c1.est_rows else 0))
        [ c1 ]
  | Ast.Eref (op, q1, q2, attr, agg) ->
      let c1 = estimate_node ~pager ~instance q1
      and c2 = estimate_node ~pager ~instance q2 in
      let m = 2 (* assumed mean reference fan-out *) in
      let source = match op with Ast.Vd -> c1.est_rows | Ast.Dv -> c2.est_rows in
      let p = max 1 (pages pager (source * m)) in
      let rec log2 n = if n <= 1 then 1 else 1 + log2 (n / 2) in
      let est_rows = c1.est_rows / 2 in
      (* The pair list and its sort are boundaries either way; [vd]
         consumes $1 twice, so streaming forces it resident. *)
      mk
        ~label:(Qprinter.ref_op_to_string op)
        ~detail:
          (attr
          ^ (match agg with
            | None -> ""
            | Some f -> " " ^ Qprinter.agg_filter_to_string f))
        ~est_rows
        ~est_reads:
          ((p * log2 p) + pages pager c1.est_rows + pages pager c2.est_rows)
        ~est_writes:((p * log2 p) + pages pager est_rows)
        ~est_writes_saved:
          (pages pager est_rows
          - (match op with Ast.Vd -> pages pager c1.est_rows | Ast.Dv -> 0))
        [ c1; c2 ]

and binary ~pager ~instance label q1 q2 rows =
  let c1 = estimate_node ~pager ~instance q1
  and c2 = estimate_node ~pager ~instance q2 in
  let est_rows = rows c1.est_rows c2.est_rows in
  mk ~label ~detail:"" ~est_rows
    ~est_reads:
      (Pager.pages_of pager c1.est_rows + Pager.pages_of pager c2.est_rows)
    ~est_writes:(Pager.pages_of pager est_rows)
    ~est_writes_saved:(Pager.pages_of pager est_rows)
    [ c1; c2 ]

and agg_detail = function
  | None -> "count($2) > 0"
  | Some f -> Qprinter.agg_filter_to_string f

(* Does the hierarchical operator's finish phase keep a materialized
   annotated copy even when streaming?  Only when the filter aggregates
   over entry sets (the copy is rescanned to collect global values). *)
and hier_keeps_annots agg =
  Hs_agg.has_entry_set_aggs (Option.value ~default:Ast.has_witness agg)

(* The root's result is materialized in every mode (it is what the
   caller scans), so its own output write is never saved. *)
let estimate ~pager ~instance q =
  let n = estimate_node ~pager ~instance q in
  let root_out = pages pager n.est_rows in
  { n with est_writes_saved = max 0 (n.est_writes_saved - root_out) }

(* --- Normalized plan fingerprint -------------------------------------------- *)

(* The evaluation strategy being fixed, the plan of a query is its
   operator tree; the fingerprint is that tree with literal constants
   elided, so the journal groups "the same query with different
   constants" under one plan. *)

let filter_shape = function
  | Afilter.Present a -> a ^ "=*"
  | Afilter.Str_eq (a, _) -> a ^ "=?"
  | Afilter.Substr (a, _) -> a ^ "~?"
  | Afilter.Int_cmp (a, op, _) ->
      a
      ^ (match op with
        | Afilter.Lt -> "<"
        | Afilter.Le -> "<="
        | Afilter.Eq -> "="
        | Afilter.Ge -> ">="
        | Afilter.Gt -> ">")
      ^ "?"
  | Afilter.Dn_eq (a, _) -> a ^ "=dn:?"

let agg_shape = function None -> "" | Some _ -> ";agg"

let rec shape (q : Ast.t) =
  match q with
  | Ast.Atomic a ->
      Printf.sprintf "atomic(%s;%s;%s)"
        (Dn.to_string a.Ast.base)
        (Ast.scope_to_string a.Ast.scope)
        (filter_shape a.Ast.filter)
  | Ast.And (q1, q2) -> "&(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Or (q1, q2) -> "|(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Diff (q1, q2) -> "-(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Hier (op, q1, q2, agg) ->
      Qprinter.hier_op_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ agg_shape agg ^ ")"
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      Qprinter.hier_op3_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ "," ^ shape q3 ^ agg_shape agg ^ ")"
  | Ast.Gsel (q1, f) ->
      "g(" ^ shape q1 ^ ";" ^ Qprinter.agg_filter_to_string f ^ ")"
  | Ast.Eref (op, q1, q2, attr, agg) ->
      Qprinter.ref_op_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ ";" ^ attr ^ agg_shape agg ^ ")"

(* FNV-1a, 64-bit: tiny, stable across runs (unlike Hashtbl.hash no
   promise is broken by a compiler upgrade changing it: the constants
   are spelled out here). *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fingerprint q = Printf.sprintf "%016Lx" (fnv64 (shape q))

(* --- Rendering --------------------------------------------------------------- *)

let rec pp_node ppf (n : node) =
  let opt = function None -> "-" | Some v -> string_of_int v in
  let time = function None -> "-" | Some ns -> Mclock.ns_to_string ns in
  let bytes = function
    | None -> "-"
    | Some b -> Fmt.str "%a" Trace.pp_bytes b
  in
  Fmt.pf ppf
    "@[<v2>%s%s  [rows est=%d got=%s | io est=%d (%dr+%dw, saves %dw) \
     got=%s | alloc=%s | t=%s]%a@]"
    n.label
    (if n.detail = "" then "" else " " ^ n.detail)
    n.est_rows (opt n.actual_rows) n.est_io n.est_reads n.est_writes
    n.est_writes_saved (opt n.actual_io)
    (bytes n.actual_alloc)
    (time n.actual_ns)
    (fun ppf children ->
      List.iter (fun c -> Fmt.pf ppf "@,%a" pp_node c) children)
    n.children

let pp ppf n = Fmt.pf ppf "%a@." pp_node n

let to_string n = Fmt.str "%a" pp_node n

let total_actual_io n =
  let rec sum n =
    Option.value ~default:0 n.actual_io
    + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_actual_ns n =
  let rec sum n =
    Option.value ~default:0 n.actual_ns
    + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_est_writes_saved n =
  let rec sum n =
    n.est_writes_saved + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_est_reads n =
  let rec sum n =
    n.est_reads + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_est_writes n =
  let rec sum n =
    n.est_writes + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

(* Preorder flattening with depths, the same shape [Qlog.ops_of_span]
   lifts from a span tree — the engine pairs the two row lists to join
   estimates onto the journal's per-operator actuals. *)
let flatten n =
  let rec go depth n acc =
    List.fold_left
      (fun acc c -> go (depth + 1) c acc)
      ((n, depth) :: acc) n.children
  in
  List.rev (go 0 n [])
