(* Query plans: the annotated-tree representation, cost estimation, a
   normalized plan fingerprint, and rendering.

   The paper's Section 8.2 evaluation strategy is fixed (bottom-up,
   sorted pipeline), so a "plan" here is the query tree annotated with
   costs.  This module holds everything about plans that does not need
   the engine — [estimate] works from a pager and an instance, so both
   [Explain] (above the engine) and [Engine] itself (the query journal
   renders the estimated plan for slow-query captures) can use it
   without a dependency cycle. *)

type node = {
  label : string;  (* operator name *)
  detail : string;  (* filter / aggregate text *)
  est_rows : int;
  est_io : int;
  actual_rows : int option;
  actual_io : int option;
  actual_ns : int option;  (* wall-clock, excluding children *)
  children : node list;
}

(* --- Cardinality estimation ---------------------------------------------- *)

(* Crude textbook selectivities; the point is order-of-magnitude cost
   attribution, not a real optimizer. *)
let filter_selectivity = function
  | Afilter.Present _ -> 0.6
  | Afilter.Str_eq (a, _) when String.equal a Schema.object_class -> 0.4
  | Afilter.Str_eq _ -> 0.1
  | Afilter.Substr _ -> 0.2
  | Afilter.Int_cmp (_, Afilter.Eq, _) -> 0.05
  | Afilter.Int_cmp _ -> 0.33
  | Afilter.Dn_eq _ -> 0.01

let pages pager n = Pager.pages_of pager n

let rec estimate_node ~pager ~instance (q : Ast.t) =
  match q with
  | Ast.Atomic a ->
      let scope_size =
        match a.Ast.scope with
        | Ast.Base -> 1
        | Ast.One | Ast.Sub -> List.length (Instance.subtree instance a.Ast.base)
      in
      let est_rows =
        max 0
          (int_of_float
             (float_of_int scope_size *. filter_selectivity a.Ast.filter))
      in
      {
        label = "atomic";
        detail =
          Printf.sprintf "%s ? %s ? %s"
            (Dn.to_string a.Ast.base)
            (Ast.scope_to_string a.Ast.scope)
            (Afilter.to_string a.Ast.filter);
        est_rows;
        est_io = 1 + pages pager scope_size + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [];
      }
  | Ast.And (q1, q2) ->
      binary ~pager ~instance "&" q1 q2 (fun n1 n2 -> min n1 n2 / 2)
  | Ast.Or (q1, q2) -> binary ~pager ~instance "|" q1 q2 (fun n1 n2 -> n1 + n2)
  | Ast.Diff (q1, q2) -> binary ~pager ~instance "-" q1 q2 (fun n1 _ -> n1 / 2)
  | Ast.Hier (op, q1, q2, agg) ->
      let c1 = estimate_node ~pager ~instance q1
      and c2 = estimate_node ~pager ~instance q2 in
      let est_rows = c1.est_rows / 2 in
      {
        label = Qprinter.hier_op_to_string op;
        detail = agg_detail agg;
        est_rows;
        (* merged scan + annotated copy + annotation scans + output *)
        est_io =
          (2 * pages pager c1.est_rows)
          + pages pager c2.est_rows
          + pages pager c1.est_rows + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [ c1; c2 ];
      }
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      let c1 = estimate_node ~pager ~instance q1
      and c2 = estimate_node ~pager ~instance q2
      and c3 = estimate_node ~pager ~instance q3 in
      let est_rows = c1.est_rows / 2 in
      {
        label = Qprinter.hier_op3_to_string op;
        detail = agg_detail agg;
        est_rows;
        est_io =
          (3 * pages pager c1.est_rows)
          + pages pager c2.est_rows + pages pager c3.est_rows
          + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [ c1; c2; c3 ];
      }
  | Ast.Gsel (q1, f) ->
      let c1 = estimate_node ~pager ~instance q1 in
      let scans = if Simple_agg.needs_global f then 2 else 1 in
      let est_rows = c1.est_rows / 2 in
      {
        label = "g";
        detail = Qprinter.agg_filter_to_string f;
        est_rows;
        est_io = (scans * pages pager c1.est_rows) + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [ c1 ];
      }
  | Ast.Eref (op, q1, q2, attr, agg) ->
      let c1 = estimate_node ~pager ~instance q1
      and c2 = estimate_node ~pager ~instance q2 in
      let m = 2 (* assumed mean reference fan-out *) in
      let source = match op with Ast.Vd -> c1.est_rows | Ast.Dv -> c2.est_rows in
      let p = max 1 (pages pager (source * m)) in
      let rec log2 n = if n <= 1 then 1 else 1 + log2 (n / 2) in
      let est_rows = c1.est_rows / 2 in
      {
        label = Qprinter.ref_op_to_string op;
        detail =
          attr
          ^ (match agg with
            | None -> ""
            | Some f -> " " ^ Qprinter.agg_filter_to_string f);
        est_rows;
        est_io =
          (2 * p * log2 p)
          + pages pager c1.est_rows + pages pager c2.est_rows
          + pages pager est_rows;
        actual_rows = None;
        actual_io = None;
        actual_ns = None;
        children = [ c1; c2 ];
      }

and binary ~pager ~instance label q1 q2 rows =
  let c1 = estimate_node ~pager ~instance q1
  and c2 = estimate_node ~pager ~instance q2 in
  let est_rows = rows c1.est_rows c2.est_rows in
  {
    label;
    detail = "";
    est_rows;
    est_io =
      Pager.pages_of pager c1.est_rows
      + Pager.pages_of pager c2.est_rows
      + Pager.pages_of pager est_rows;
    actual_rows = None;
    actual_io = None;
    actual_ns = None;
    children = [ c1; c2 ];
  }

and agg_detail = function
  | None -> "count($2) > 0"
  | Some f -> Qprinter.agg_filter_to_string f

let estimate ~pager ~instance q = estimate_node ~pager ~instance q

(* --- Normalized plan fingerprint -------------------------------------------- *)

(* The evaluation strategy being fixed, the plan of a query is its
   operator tree; the fingerprint is that tree with literal constants
   elided, so the journal groups "the same query with different
   constants" under one plan. *)

let filter_shape = function
  | Afilter.Present a -> a ^ "=*"
  | Afilter.Str_eq (a, _) -> a ^ "=?"
  | Afilter.Substr (a, _) -> a ^ "~?"
  | Afilter.Int_cmp (a, op, _) ->
      a
      ^ (match op with
        | Afilter.Lt -> "<"
        | Afilter.Le -> "<="
        | Afilter.Eq -> "="
        | Afilter.Ge -> ">="
        | Afilter.Gt -> ">")
      ^ "?"
  | Afilter.Dn_eq (a, _) -> a ^ "=dn:?"

let agg_shape = function None -> "" | Some _ -> ";agg"

let rec shape (q : Ast.t) =
  match q with
  | Ast.Atomic a ->
      Printf.sprintf "atomic(%s;%s;%s)"
        (Dn.to_string a.Ast.base)
        (Ast.scope_to_string a.Ast.scope)
        (filter_shape a.Ast.filter)
  | Ast.And (q1, q2) -> "&(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Or (q1, q2) -> "|(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Diff (q1, q2) -> "-(" ^ shape q1 ^ "," ^ shape q2 ^ ")"
  | Ast.Hier (op, q1, q2, agg) ->
      Qprinter.hier_op_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ agg_shape agg ^ ")"
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      Qprinter.hier_op3_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ "," ^ shape q3 ^ agg_shape agg ^ ")"
  | Ast.Gsel (q1, f) ->
      "g(" ^ shape q1 ^ ";" ^ Qprinter.agg_filter_to_string f ^ ")"
  | Ast.Eref (op, q1, q2, attr, agg) ->
      Qprinter.ref_op_to_string op
      ^ "(" ^ shape q1 ^ "," ^ shape q2 ^ ";" ^ attr ^ agg_shape agg ^ ")"

(* FNV-1a, 64-bit: tiny, stable across runs (unlike Hashtbl.hash no
   promise is broken by a compiler upgrade changing it: the constants
   are spelled out here). *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fingerprint q = Printf.sprintf "%016Lx" (fnv64 (shape q))

(* --- Rendering --------------------------------------------------------------- *)

let rec pp_node ppf (n : node) =
  let opt = function None -> "-" | Some v -> string_of_int v in
  let time = function None -> "-" | Some ns -> Mclock.ns_to_string ns in
  Fmt.pf ppf "@[<v2>%s%s  [rows est=%d got=%s | io est=%d got=%s | t=%s]%a@]"
    n.label
    (if n.detail = "" then "" else " " ^ n.detail)
    n.est_rows (opt n.actual_rows) n.est_io (opt n.actual_io)
    (time n.actual_ns)
    (fun ppf children ->
      List.iter (fun c -> Fmt.pf ppf "@,%a" pp_node c) children)
    n.children

let pp ppf n = Fmt.pf ppf "%a@." pp_node n

let to_string n = Fmt.str "%a" pp_node n

let total_actual_io n =
  let rec sum n =
    Option.value ~default:0 n.actual_io
    + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n

let total_actual_ns n =
  let rec sum n =
    Option.value ~default:0 n.actual_ns
    + List.fold_left (fun a c -> a + sum c) 0 n.children
  in
  sum n
