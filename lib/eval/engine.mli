(** The query evaluation engine (Section 8.2).

    Bottom-up evaluation of the query tree: atomic queries come sorted
    off the clustering dn-index (optionally index-assisted), and every
    operator consumes and produces canonically sorted lists, so nothing
    is ever re-sorted.  A naive mode swaps each operator for its
    quadratic baseline (same results, different cost) for the crossover
    experiments. *)

type algorithms = Stack_based | Naive_nested_loop

(** How operator boundaries are handled (Theorem 8.3): [Materialized]
    writes every intermediate result and re-reads it; [Streaming] fuses
    the tree into one pipeline, materializing only the root result, sort
    boundaries (Eref pair lists) and double-consumed operands. *)
type mode = Materialized | Streaming

(** How atomic access paths are decided.  [Auto] (the default) is the
    cost-based planner: per sub-scope atomic, price secondary-index
    probe vs dn-index subtree scan vs result-cache hit from the index's
    cardinality counters (calibrated by an attached {!Planstats} store)
    and take the cheapest, and reorder maximal [And]/[Or] chains
    ascending by estimated cardinality.  [Force_index] / [Force_scan]
    pin every atomic to one path and skip reordering — the clean
    baselines the planner is benchmarked against.  [Off] is the legacy
    behavior: unconditional index use whenever an index applies, no
    reordering, selectivity-only estimates, no path journaling. *)
type planner = Auto | Force_index | Force_scan | Off

type t

val create :
  ?block:int ->
  ?window:int ->
  ?with_attr_index:bool ->
  ?algorithms:algorithms ->
  ?cache_pages:int ->
  ?result_cache:Cache.t ->
  ?stats:Io_stats.t ->
  ?mode:mode ->
  ?planner:planner ->
  ?directory:Directory.t ->
  Instance.t ->
  t
(** Build an engine over an instance.  [block] is the blocking factor
    (default 64), [window] the per-operator stack window in pages
    (default 2), [with_attr_index] controls secondary-index-assisted
    atomic evaluation (default on), [result_cache] plugs in a semantic
    query-result cache (default none — caching is opt-in), [mode] the
    default operator-boundary handling (default [Streaming]), [planner]
    the access-path policy (default [Auto]), [directory] a live
    directory to {!watch} for index staleness.  Index construction cost
    is not charged to the query counters. *)

val mode : t -> mode
(** The engine's default boundary mode. *)

val set_mode : t -> mode -> unit
(** Change the default boundary mode (the shell's [:mode] command). *)

val planner : t -> planner
val set_planner : t -> planner -> unit
(** Change the access-path policy (the shell's [:planner] command). *)

val calibration : t -> Planstats.t option

val set_calibration : t -> Planstats.t option -> unit
(** Attach (or detach) a {!Planstats} store: the planner's estimates
    are then corrected by its learned per-path bias factors, closing
    the observe–calibrate loop. *)

val path_counts : t -> int * int * int
(** [(index, scan, cache)]: how many sub-scope atomics each access path
    served since the engine was built (the [:planner paths] view). *)

val watch : t -> Directory.t -> unit
(** Subscribe to the directory's update hooks; any update marks the
    engine dirty and the next evaluation re-fetches the instance and
    rebuilds both indexes before running (rebuild I/O is maintenance,
    not query cost).  Queries through the index path therefore always
    see post-update values. *)

val plan_rewrite : ?mode:mode -> t -> Ast.t -> Ast.t
(** The planner's tree rewrite as {!eval} applies it: under [Auto],
    boolean chains reordered by estimated cardinality; otherwise the
    tree unchanged.  Exposed so {!Explain} can show the tree that would
    actually run. *)

val stats : t -> Io_stats.t
val pager : t -> Pager.t
val instance : t -> Instance.t

val dn_index : t -> Dn_index.t
(** The engine's clustering index (shared with the fusion optimizer). *)

val attr_index : t -> Attr_index.t option
(** The per-attribute secondary indexes, when built — the planner's
    statistics source (shared with the distributed journal). *)

val cache : t -> Buffer_pool.t option
(** The buffer pool, when [cache_pages > 0]. *)

val result_cache : t -> Cache.t option
(** The semantic result cache handed to {!create}, if any. *)

val reset_stats : t -> unit

val eval_atomic : t -> Ast.atomic -> Entry.t Ext_list.t
(** One atomic query, answered from the indexes, sorted. *)

val eval_atomic_src : t -> Ast.atomic -> Entry.t Ext_list.Source.src
(** Streaming atomic evaluation: same index charges, the hits flow out
    as a live source. *)

val eval_node_src : t -> Ast.t -> Entry.t Ext_list.Source.src
(** Evaluate a tree as one fused pipeline, returning the root's live
    source unmaterialized (one traced span per operator, as with the
    materialized evaluator).  Used by {!Explain.profile} and the
    distributed coordinator; {!eval} materializes the root. *)

val eval : ?mode:mode -> t -> Ast.t -> Entry.t Ext_list.t
(** Evaluate a query tree; the result list is canonically sorted.
    [mode] overrides the engine's default boundary handling for this
    call; under [Streaming] the whole tree runs as one pipeline and only
    the root result is written (naive algorithms always run
    materialized).
    When the query journal ({!Qlog}) is enabled, every call records one
    journal event — query text, plan fingerprint, result count, I/O and
    wall time, per-operator rows from the span tree — and queries at or
    above the slow threshold carry a full capture (span tree + rendered
    estimated plan).  Tracing is forced on for the extent of a
    journaled query.

    With a [result_cache], the evaluation is preceded by a cache lookup
    (a fresh entry is served as a resident list, charging no page io)
    and followed by a store offer on miss or staleness; every journal
    event then carries the cache outcome ([hit|miss|stale], or
    [bypass] without a cache). *)

val with_forced_tracing : bool -> (unit -> 'a) -> 'a
(** [with_forced_tracing journal f] runs [f] with span tracing enabled
    when [journal] asks for it and tracing is off, restoring the
    previous state after.  Shared with the distributed coordinator. *)

val eval_entries : ?mode:mode -> t -> Ast.t -> Entry.t list

val eval_instance : ?mode:mode -> t -> Ast.t -> Instance.t
(** Wrap the result back into an instance (closure property). *)

val eval_string : ?mode:mode -> t -> string -> Ast.t * Entry.t list
(** Parse (schema-aware) and evaluate. *)

(** RFC-2696-style paged results. *)
type page = {
  entries : Entry.t list;
  cookie : string option;  (** [None]: no more pages *)
}

val eval_paged : ?mode:mode -> t -> ?page_size:int -> ?cookie:string -> Ast.t -> page
(** Deliver the result page by page: pass each page's [cookie] back to
    get the next one.  The cookie encodes the last delivered key, so
    paging is stable across re-evaluation.
    @raise Invalid_argument if [page_size <= 0]. *)
