(* The QoS / Service-Level-Agreement DEN application (Examples 2.1 and
   3.1, Figure 12), after the directory schema of Chaudhury et al. [11].

   The directory stores SLAPolicyRules entries whose dn-valued attributes
   reference trafficProfile, policyValidityPeriod and SLADSAction entries;
   a packet-conditioning decision is the composed directory query of
   Section 7 (Example 7.1): join policies to matching profiles and valid
   periods (vd), keep the highest-priority ones (g with
   min(SLARulePriority) = min(min(SLARulePriority))), remove policies
   with an applicable exception (vd over SLAExceptionRef + set
   difference), and fetch their actions (dv over SLADSActRef). *)

(* --- Schema ------------------------------------------------------------- *)

let schema () =
  let s = Schema.empty () in
  List.iter
    (fun (a, ty) -> Schema.declare_attr s a ty)
    [
      ("dc", Value.T_string);
      ("ou", Value.T_string);
      ("SLAPolicyName", Value.T_string);
      ("SLAPolicyScope", Value.T_string);
      ("SLARulePriority", Value.T_int);
      ("SLAExceptionRef", Value.T_dn);
      ("SLATPRef", Value.T_dn);
      ("SLAPVPRef", Value.T_dn);
      ("SLADSActRef", Value.T_dn);
      ("TPName", Value.T_string);
      ("SourceAddress", Value.T_string);
      ("SourcePort", Value.T_int);
      ("DestAddress", Value.T_string);
      ("DestPort", Value.T_int);
      ("ProtocolNumber", Value.T_int);
      ("PVPName", Value.T_string);
      ("PVStartTime", Value.T_int);
      ("PVEndTime", Value.T_int);
      ("PVDayOfWeek", Value.T_int);
      ("DSActionName", Value.T_string);
      ("DSPermission", Value.T_string);
      ("DSInProfilePeakRate", Value.T_int);
      ("DSDropPriority", Value.T_int);
    ];
  Schema.declare_class s "dcObject" [ "dc" ];
  Schema.declare_class s "domain" [ "dc" ];
  Schema.declare_class s "organizationalUnit" [ "ou" ];
  Schema.declare_class s "SLAPolicyRules"
    [
      "SLAPolicyName"; "SLAPolicyScope"; "SLARulePriority"; "SLAExceptionRef";
      "SLATPRef"; "SLAPVPRef"; "SLADSActRef";
    ];
  Schema.declare_class s "trafficProfile"
    [ "TPName"; "SourceAddress"; "SourcePort"; "DestAddress"; "DestPort";
      "ProtocolNumber" ];
  Schema.declare_class s "policyValidityPeriod"
    [ "PVPName"; "PVStartTime"; "PVEndTime"; "PVDayOfWeek" ];
  Schema.declare_class s "SLADSAction"
    [ "DSActionName"; "DSPermission"; "DSInProfilePeakRate"; "DSDropPriority" ];
  s

let oc c = (Schema.object_class, Value.Str c)

(* --- Figure 12 reconstruction ------------------------------------------- *)

let domain = "ou=networkPolicies, dc=research, dc=att, dc=com"
let policies_base = "ou=SLAPolicyRules, " ^ domain
let profiles_base = "ou=trafficProfile, " ^ domain
let periods_base = "ou=policyValidityPeriod, " ^ domain
let actions_base = "ou=SLADSAction, " ^ domain

let policy_dn name = Printf.sprintf "SLAPolicyName=%s, %s" name policies_base
let profile_dn name = Printf.sprintf "TPName=%s, %s" name profiles_base
let period_dn name = Printf.sprintf "PVPName=%s, %s" name periods_base
let action_dn name = Printf.sprintf "DSActionName=%s, %s" name actions_base

let entry d attrs = Entry.make (Dn.of_string d) attrs

let policy_entry ~name ~scope ~priority ~exceptions ~profiles ~periods ~action =
  entry (policy_dn name)
    ([
       ("SLAPolicyName", Value.Str name);
       ("SLAPolicyScope", Value.Str scope);
       ("SLARulePriority", Value.Int priority);
       ("SLADSActRef", Value.Dn (Dn.of_string (action_dn action)));
       oc "SLAPolicyRules";
     ]
    @ List.map (fun e -> ("SLAExceptionRef", Value.Dn (Dn.of_string (policy_dn e)))) exceptions
    @ List.map (fun p -> ("SLATPRef", Value.Dn (Dn.of_string (profile_dn p)))) profiles
    @ List.map (fun v -> ("SLAPVPRef", Value.Dn (Dn.of_string (period_dn v)))) periods)

let profile_entry ~name ?src_addr ?src_port ?dst_addr ?dst_port ?protocol () =
  entry (profile_dn name)
    ([ ("TPName", Value.Str name); oc "trafficProfile" ]
    @ (match src_addr with Some a -> [ ("SourceAddress", Value.Str a) ] | None -> [])
    @ (match src_port with Some p -> [ ("SourcePort", Value.Int p) ] | None -> [])
    @ (match dst_addr with Some a -> [ ("DestAddress", Value.Str a) ] | None -> [])
    @ (match dst_port with Some p -> [ ("DestPort", Value.Int p) ] | None -> [])
    @ match protocol with Some p -> [ ("ProtocolNumber", Value.Int p) ] | None -> [])

let period_entry ~name ~start_time ~end_time ~days =
  entry (period_dn name)
    ([
       ("PVPName", Value.Str name);
       ("PVStartTime", Value.Int start_time);
       ("PVEndTime", Value.Int end_time);
       oc "policyValidityPeriod";
     ]
    @ List.map (fun d -> ("PVDayOfWeek", Value.Int d)) days)

let action_entry ~name ~permission ~peak_rate ~drop_priority =
  entry (action_dn name)
    [
      ("DSActionName", Value.Str name);
      ("DSPermission", Value.Str permission);
      ("DSInProfilePeakRate", Value.Int peak_rate);
      ("DSDropPriority", Value.Int drop_priority);
      oc "SLADSAction";
    ]

(* The sample directory of Figure 12: the dso policy (deny data traffic
   from two subnets on weekends and Thanksgiving 1998), its two traffic
   profiles, two validity periods and denyAll action, plus the two
   exception policies (fatt, mail) the text mentions but the figure
   omits for space. *)
let figure_12 () =
  let sc = schema () in
  Instance.of_entries sc
    [
      entry "dc=com" [ ("dc", Value.Str "com"); oc "dcObject" ];
      entry "dc=att, dc=com"
        [ ("dc", Value.Str "att"); oc "dcObject"; oc "domain" ];
      entry "dc=research, dc=att, dc=com"
        [ ("dc", Value.Str "research"); oc "dcObject" ];
      entry domain [ ("ou", Value.Str "networkPolicies"); oc "organizationalUnit" ];
      entry policies_base
        [ ("ou", Value.Str "SLAPolicyRules"); oc "organizationalUnit" ];
      entry profiles_base
        [ ("ou", Value.Str "trafficProfile"); oc "organizationalUnit" ];
      entry periods_base
        [ ("ou", Value.Str "policyValidityPeriod"); oc "organizationalUnit" ];
      entry actions_base
        [ ("ou", Value.Str "SLADSAction"); oc "organizationalUnit" ];
      policy_entry ~name:"dso" ~scope:"DataTraffic" ~priority:2
        ~exceptions:[ "fatt"; "mail" ]
        ~profiles:[ "lsplitOff"; "csplitOff" ]
        ~periods:[ "1998weekend"; "1998thanksgiving" ]
        ~action:"denyAll";
      policy_entry ~name:"fatt" ~scope:"DataTraffic" ~priority:2 ~exceptions:[]
        ~profiles:[ "fattPipe" ] ~periods:[ "1998weekend" ] ~action:"permitLow";
      policy_entry ~name:"mail" ~scope:"DataTraffic" ~priority:2 ~exceptions:[]
        ~profiles:[ "smtp" ] ~periods:[ "1998always" ] ~action:"permitLow";
      policy_entry ~name:"gold" ~scope:"DataTraffic" ~priority:1 ~exceptions:[]
        ~profiles:[ "goldSubnet" ] ~periods:[ "1998always" ] ~action:"permitHigh";
      profile_entry ~name:"lsplitOff" ~src_addr:"204.178.16.*" ();
      profile_entry ~name:"csplitOff" ~src_addr:"207.140.*.*" ();
      profile_entry ~name:"fattPipe" ~src_addr:"204.178.16.*" ~dst_port:119 ();
      profile_entry ~name:"smtp" ~src_port:25 ();
      profile_entry ~name:"goldSubnet" ~src_addr:"135.104.*.*" ();
      period_entry ~name:"1998weekend" ~start_time:19980101060000
        ~end_time:19981231180000 ~days:[ 6; 7 ];
      period_entry ~name:"1998thanksgiving" ~start_time:19981126000000
        ~end_time:19981126235959 ~days:[];
      period_entry ~name:"1998always" ~start_time:19980101000000
        ~end_time:19981231235959 ~days:[];
      action_entry ~name:"denyAll" ~permission:"Deny" ~peak_rate:20
        ~drop_priority:2;
      action_entry ~name:"permitLow" ~permission:"Permit" ~peak_rate:10
        ~drop_priority:3;
      action_entry ~name:"permitHigh" ~permission:"Permit" ~peak_rate:100
        ~drop_priority:1;
    ]

(* --- Packet matching ----------------------------------------------------- *)

type packet = {
  src_addr : string;
  src_port : int;
  dst_addr : string;
  dst_port : int;
  protocol : int;
}

type clock = { time : int; day_of_week : int }
(* [time] in yyyymmddhhmmss form, [day_of_week] 1-7 *)

(* A profile attribute constrains the packet only when present; string
   address values are wildcard patterns ("204.178.16.*"). *)
let addr_matches pattern addr =
  match Afilter.of_string ("x=" ^ pattern) with
  | Afilter.Substr (_, pat) -> Afilter.substring_matches pat addr
  | Afilter.Str_eq (_, s) -> String.equal s addr
  | Afilter.Int_cmp (_, Afilter.Eq, p) -> string_of_int p = addr
  | _ -> false

let profile_matches pkt e =
  let str_ok attr v =
    match Entry.string_values e attr with
    | [] -> true
    | patterns -> List.exists (fun p -> addr_matches p v) patterns
  in
  let int_ok attr v =
    match Entry.int_values e attr with
    | [] -> true
    | ports -> List.mem v ports
  in
  str_ok "SourceAddress" pkt.src_addr
  && int_ok "SourcePort" pkt.src_port
  && str_ok "DestAddress" pkt.dst_addr
  && int_ok "DestPort" pkt.dst_port
  && int_ok "ProtocolNumber" pkt.protocol

let period_matches clock e =
  let start_ok =
    match Entry.int_values e "PVStartTime" with
    | [] -> true
    | ts -> List.exists (fun t -> t <= clock.time) ts
  in
  let end_ok =
    match Entry.int_values e "PVEndTime" with
    | [] -> true
    | ts -> List.exists (fun t -> clock.time <= t) ts
  in
  let day_ok =
    match Entry.int_values e "PVDayOfWeek" with
    | [] -> true
    | days -> List.mem clock.day_of_week days
  in
  start_ok && end_ok && day_ok

(* --- The decision query --------------------------------------------------- *)

type decision = {
  matched_policies : Entry.t list;  (* applicable, highest priority, no
                                       applicable exception *)
  actions : Entry.t list;
}

let atomic base filter = Ast.atomic (Dn.of_string base) filter

let all_policies = atomic policies_base (Afilter.Str_eq (Schema.object_class, "SLAPolicyRules"))
let all_profiles = atomic profiles_base (Afilter.Str_eq (Schema.object_class, "trafficProfile"))
let all_periods = atomic periods_base (Afilter.Str_eq (Schema.object_class, "policyValidityPeriod"))
let all_actions = atomic actions_base (Afilter.Str_eq (Schema.object_class, "SLADSAction"))

(* Decide the treatment of [pkt] at [clock] against the directory behind
   [engine].  The enforcement-point-supplied profile (packet attributes
   and time) is matched against trafficProfile / policyValidityPeriod
   entries; everything after that is directory query evaluation with the
   operator algorithms. *)
let decide engine ~pkt ~clock =
  (* Matching profiles and periods, as sorted lists. *)
  let profiles =
    Ext_list.filter (profile_matches pkt) (Engine.eval engine all_profiles)
  in
  let periods =
    Ext_list.filter (period_matches clock) (Engine.eval engine all_periods)
  in
  let policies = Engine.eval engine all_policies in
  (* Policies whose pro*file and validity period both match: two vd
     semijoins composed with an and. *)
  let by_profile = Er.compute_vd policies profiles "SLATPRef" in
  let by_period = Er.compute_vd policies periods "SLAPVPRef" in
  let applicable = Bool_ops.and_ by_profile by_period in
  (* Highest-priority applicable policies (lower value = higher priority):
     (g applicable min(SLARulePriority) = min(min(SLARulePriority))). *)
  let min_priority =
    {
      Ast.lhs = Ast.A_entry (Ast.Ea_agg (Ast.Min, Ast.Self "SLARulePriority"));
      op = Ast.Eq;
      rhs = Ast.A_entry_set (Ast.Esa_agg (Ast.Min, Ast.Ea_agg (Ast.Min, Ast.Self "SLARulePriority")));
    }
  in
  let top = Simple_agg.compute min_priority applicable in
  (* Remove policies having an applicable exception of the same priority
     (Section 2.1(b)); same priority as a top policy means the exception
     is itself a top policy. *)
  let with_live_exception = Er.compute_vd top top "SLAExceptionRef" in
  let surviving = Bool_ops.diff top with_live_exception in
  (* Fetch the actions of the surviving policies. *)
  let actions = Engine.eval engine all_actions in
  let chosen = Er.compute_dv actions surviving "SLADSActRef" in
  {
    matched_policies = Ext_list.to_list surviving;
    actions = Ext_list.to_list chosen;
  }

(* The pure-L3 decision query of Example 7.1 for port-identified traffic:
   the action of the highest-priority policy governing SMTP traffic. *)
let example_7_1_query =
  Printf.sprintf
    "(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction) (g (vd (dc=att, \
     dc=com ? sub ? objectClass=SLAPolicyRules) (& (dc=att, dc=com ? sub ? \
     SourcePort=25) (dc=att, dc=com ? sub ? objectClass=trafficProfile)) \
     SLATPRef) min(SLARulePriority) = min(min(SLARulePriority))) SLADSActRef)"

(* --- Policy conflict detection --------------------------------------------- *)

(* Section 2.1: "a policy conflict occurs when two or more policies in
   the directory specify conflicting actions for the same packet; such
   conflicts must be resolved before populating the directory", either by
   distinct priorities or by an exception relation.  [conflicts] audits a
   repository for unresolved conflicts: pairs of policies that can both
   apply to some packet at some time, carry the same priority, prescribe
   different actions, and are not related by SLAExceptionRef.

   Overlap testing is conservative (it may report a pair whose profiles
   are actually disjoint in some subtle way, never the converse), which
   is the safe direction for an audit. *)

type conflict = {
  policy_a : Entry.t;
  policy_b : Entry.t;
  reason : string;
}

(* Can two wildcard address patterns match a common address?  Exact for
   the pattern forms the application uses (prefix patterns and full
   wildcards); conservative otherwise. *)
let patterns_may_overlap p1 p2 =
  let prefix_of p =
    match Afilter.of_string ("x=" ^ p) with
    | Afilter.Substr (_, { Afilter.initial; _ }) -> initial
    | Afilter.Str_eq (_, s) -> Some s
    | Afilter.Present _ -> Some ""
    | _ -> None
  in
  match (prefix_of p1, prefix_of p2) with
  | Some a, Some b ->
      let n = min (String.length a) (String.length b) in
      String.sub a 0 n = String.sub b 0 n
  | _ -> true  (* cannot prove disjointness: assume overlap *)

(* Do two profile entries admit a common packet? *)
let profiles_may_overlap e1 e2 =
  let str_overlap attr =
    match (Entry.string_values e1 attr, Entry.string_values e2 attr) with
    | [], _ | _, [] -> true  (* unconstrained on one side *)
    | ps1, ps2 ->
        List.exists (fun a -> List.exists (patterns_may_overlap a) ps2) ps1
  in
  let int_overlap attr =
    match (Entry.int_values e1 attr, Entry.int_values e2 attr) with
    | [], _ | _, [] -> true
    | vs1, vs2 -> List.exists (fun v -> List.mem v vs2) vs1
  in
  str_overlap "SourceAddress" && str_overlap "DestAddress"
  && int_overlap "SourcePort" && int_overlap "DestPort"
  && int_overlap "ProtocolNumber"

(* Do two validity periods admit a common instant? *)
let periods_may_overlap e1 e2 =
  let lo e = match Entry.int_values e "PVStartTime" with t :: _ -> t | [] -> min_int in
  let hi e = match Entry.int_values e "PVEndTime" with t :: _ -> t | [] -> max_int in
  let days e = Entry.int_values e "PVDayOfWeek" in
  let day_overlap =
    match (days e1, days e2) with
    | [], _ | _, [] -> true
    | d1, d2 -> List.exists (fun d -> List.mem d d2) d1
  in
  lo e1 <= hi e2 && lo e2 <= hi e1 && day_overlap

let conflicts instance =
  let by_class c =
    Instance.fold
      (fun acc e -> if Entry.has_class e c then e :: acc else acc)
      [] instance
    |> List.rev
  in
  let policies = by_class "SLAPolicyRules" in
  let resolve d = Instance.find instance d in
  let referenced attr e = List.filter_map resolve (Entry.dn_values e attr) in
  let prio e =
    match Entry.int_values e "SLARulePriority" with p :: _ -> p | [] -> max_int
  in
  let exception_related a b =
    let refs e = Entry.dn_values e "SLAExceptionRef" in
    List.exists (Dn.equal (Entry.dn b)) (refs a)
    || List.exists (Dn.equal (Entry.dn a)) (refs b)
  in
  let actions e =
    List.concat_map (fun a -> Entry.string_values a "DSActionName")
      (referenced "SLADSActRef" e)
    |> List.sort String.compare
  in
  let overlapping_applicability a b =
    let profs e = referenced "SLATPRef" e in
    let pers e = referenced "SLAPVPRef" e in
    List.exists (fun p1 -> List.exists (profiles_may_overlap p1) (profs b)) (profs a)
    && List.exists (fun v1 -> List.exists (periods_may_overlap v1) (pers b)) (pers a)
  in
  let rec pairs acc = function
    | [] -> List.rev acc
    | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              if
                prio a = prio b
                && actions a <> actions b
                && (not (exception_related a b))
                && overlapping_applicability a b
              then
                {
                  policy_a = a;
                  policy_b = b;
                  reason =
                    Printf.sprintf
                      "same priority %d, overlapping profiles/periods,                        different actions, no exception relation"
                      (prio a);
                }
                :: acc
              else acc)
            acc rest
        in
        pairs acc rest
  in
  pairs [] policies

let pp_conflict ppf c =
  Fmt.pf ppf "%a <-> %a: %s" Dn.pp (Entry.dn c.policy_a) Dn.pp
    (Entry.dn c.policy_b) c.reason

(* --- Synthetic QoS directories ------------------------------------------- *)

type gen_params = {
  seed : int;
  n_policies : int;
  n_profiles : int;
  n_periods : int;
  n_actions : int;
  profiles_per_policy : int;
  periods_per_policy : int;
  exception_prob : float;
  priority_levels : int;
}

let default_gen =
  {
    seed = 1999;
    n_policies = 100;
    n_profiles = 40;
    n_periods = 12;
    n_actions = 8;
    profiles_per_policy = 2;
    periods_per_policy = 2;
    exception_prob = 0.3;
    priority_levels = 5;
  }

(* A scaled synthetic policy repository with the same structure as
   Figure 12: policies referencing shared pools of profiles, validity
   periods and actions, with occasional exception references. *)
let generate ?(params = default_gen) () =
  let rng = Prng.create params.seed in
  let profile i =
    let octet k = string_of_int (Prng.int rng k) in
    if Prng.flip rng 0.3 then
      profile_entry ~name:(Printf.sprintf "tp%d" i)
        ~src_port:(Prng.pick rng [| 21; 22; 25; 53; 80; 110; 119; 443 |])
        ()
    else
      profile_entry ~name:(Printf.sprintf "tp%d" i)
        ~src_addr:(octet 223 ^ "." ^ octet 255 ^ "." ^ octet 255 ^ ".*")
        ()
  in
  let period i =
    let day = 1 + Prng.int rng 7 in
    period_entry ~name:(Printf.sprintf "pvp%d" i)
      ~start_time:(19980101000000 + Prng.int rng 10000)
      ~end_time:(19981231235959 - Prng.int rng 10000)
      ~days:(if Prng.flip rng 0.5 then [ day; (day mod 7) + 1 ] else [])
  in
  let action i =
    action_entry ~name:(Printf.sprintf "act%d" i)
      ~permission:(if Prng.flip rng 0.5 then "Permit" else "Deny")
      ~peak_rate:(1 + Prng.int rng 100)
      ~drop_priority:(Prng.int rng 4)
  in
  let policy i =
    let sample pool k = List.init k (fun _ -> Printf.sprintf "%s%d" pool (Prng.int rng (max 1 (match pool with
      | "tp" -> params.n_profiles
      | "pvp" -> params.n_periods
      | _ -> params.n_actions)))) in
    let exceptions =
      if i > 0 && Prng.flip rng params.exception_prob then
        [ Printf.sprintf "pol%d" (Prng.int rng i) ]
      else []
    in
    policy_entry ~name:(Printf.sprintf "pol%d" i) ~scope:"DataTraffic"
      ~priority:(1 + Prng.int rng params.priority_levels)
      ~exceptions
      ~profiles:(sample "tp" params.profiles_per_policy)
      ~periods:(sample "pvp" params.periods_per_policy)
      ~action:(Printf.sprintf "act%d" (Prng.int rng params.n_actions))
  in
  let sc = schema () in
  let scaffold =
    [
      entry "dc=com" [ ("dc", Value.Str "com"); oc "dcObject" ];
      entry "dc=att, dc=com" [ ("dc", Value.Str "att"); oc "dcObject" ];
      entry "dc=research, dc=att, dc=com"
        [ ("dc", Value.Str "research"); oc "dcObject" ];
      entry domain [ ("ou", Value.Str "networkPolicies"); oc "organizationalUnit" ];
      entry policies_base [ ("ou", Value.Str "SLAPolicyRules"); oc "organizationalUnit" ];
      entry profiles_base [ ("ou", Value.Str "trafficProfile"); oc "organizationalUnit" ];
      entry periods_base [ ("ou", Value.Str "policyValidityPeriod"); oc "organizationalUnit" ];
      entry actions_base [ ("ou", Value.Str "SLADSAction"); oc "organizationalUnit" ];
    ]
  in
  Instance.of_entries sc
    (scaffold
    @ List.init params.n_profiles profile
    @ List.init params.n_periods period
    @ List.init params.n_actions action
    @ List.init params.n_policies policy)

(* Random packets and clocks for decision workloads. *)
let random_packet rng =
  let octet k = string_of_int (Prng.int rng k) in
  {
    src_addr = octet 223 ^ "." ^ octet 255 ^ "." ^ octet 255 ^ "." ^ octet 255;
    src_port = Prng.pick rng [| 21; 22; 25; 53; 80; 110; 119; 443; 8080 |];
    dst_addr = octet 223 ^ "." ^ octet 255 ^ "." ^ octet 255 ^ "." ^ octet 255;
    dst_port = Prng.pick rng [| 25; 80; 119; 443 |];
    protocol = Prng.pick rng [| 6; 17 |];
  }

let random_clock rng =
  {
    time = 19980101000000 + Prng.int rng 9999999999;
    day_of_week = 1 + Prng.int rng 7;
  }
