(* Organizational and personal distribution lists — the application of
   Jagadish et al. [22] that Example 5.1 alludes to ("modeling and
   unambiguously locating organizational and personal lists"), and the
   paper's standing example of cyclic data through dn-valued attributes
   (Section 3.5: "arbitrary DAGs and cyclic data can easily be described
   by having attributes 'pointing' to the referenced entries").

   Lists are entries with multi-valued [member] references to persons or
   to other lists; nesting may be arbitrarily deep and even cyclic.
   Direct membership questions are single L2/L3 queries; transitive
   membership is a fixpoint of dv/vd steps, evaluated with the engine
   round by round (each round is one query — the language itself has no
   recursion, which this module makes concrete). *)

let schema () =
  let s = Schema.empty () in
  List.iter
    (fun (a, ty) -> Schema.declare_attr s a ty)
    [
      ("dc", Value.T_string);
      ("ou", Value.T_string);
      ("uid", Value.T_string);
      ("surName", Value.T_string);
      ("listName", Value.T_string);
      ("member", Value.T_dn);
      ("owner", Value.T_dn);
      ("description", Value.T_string);
    ];
  Schema.declare_class s "dcObject" [ "dc" ];
  Schema.declare_class s "organizationalUnit" [ "ou" ];
  Schema.declare_class s "person" [ "uid"; "surName" ];
  Schema.declare_class s "groupOfNames"
    [ "listName"; "member"; "owner"; "description" ];
  s

let oc c = (Schema.object_class, Value.Str c)
let org_base = "dc=att, dc=com"
let people_base = "ou=people, " ^ org_base
let lists_base = "ou=lists, " ^ org_base
let person_dn uid = Printf.sprintf "uid=%s, %s" uid people_base
let list_dn name = Printf.sprintf "listName=%s, %s" name lists_base
let entry d attrs = Entry.make (Dn.of_string d) attrs

let person_entry ~uid ~sur_name =
  entry (person_dn uid)
    [ ("uid", Value.Str uid); ("surName", Value.Str sur_name); oc "person" ]

let list_entry ~name ?owner ~members () =
  entry (list_dn name)
    ([ ("listName", Value.Str name); oc "groupOfNames" ]
    @ (match owner with
      | Some o -> [ ("owner", Value.Dn (Dn.of_string (person_dn o))) ]
      | None -> [])
    @ List.map
        (fun m ->
          let d =
            if String.length m > 5 && String.sub m 0 5 = "list:" then
              list_dn (String.sub m 5 (String.length m - 5))
            else person_dn m
          in
          ("member", Value.Dn (Dn.of_string d)))
        members)

(* A small sample: nested lists, a shared member, an empty list and a
   cycle (staff <-> oncall) — everything the membership queries must
   cope with. *)
let sample () =
  Instance.of_entries (schema ())
    [
      entry "dc=com" [ ("dc", Value.Str "com"); oc "dcObject" ];
      entry org_base [ ("dc", Value.Str "att"); oc "dcObject" ];
      entry people_base [ ("ou", Value.Str "people"); oc "organizationalUnit" ];
      entry lists_base [ ("ou", Value.Str "lists"); oc "organizationalUnit" ];
      person_entry ~uid:"jag" ~sur_name:"jagadish";
      person_entry ~uid:"divesh" ~sur_name:"srivastava";
      person_entry ~uid:"tova" ~sur_name:"milo";
      person_entry ~uid:"laks" ~sur_name:"lakshmanan";
      person_entry ~uid:"dimitra" ~sur_name:"vista";
      list_entry ~name:"dbgroup" ~owner:"divesh"
        ~members:[ "jag"; "divesh"; "list:theory" ] ();
      list_entry ~name:"theory" ~owner:"tova" ~members:[ "tova"; "laks" ] ();
      list_entry ~name:"staff" ~members:[ "dimitra"; "list:oncall" ] ();
      list_entry ~name:"oncall" ~members:[ "divesh"; "list:staff" ] ();
      (* a cycle *)
      list_entry ~name:"empty" ~members:[] ();
    ]

(* --- Direct membership as single queries -------------------------------------- *)

let atomic base filter = Ast.atomic (Dn.of_string base) filter
let all_lists = atomic lists_base (Afilter.Str_eq (Schema.object_class, "groupOfNames"))
let all_people = atomic people_base (Afilter.Str_eq (Schema.object_class, "person"))

(* Lists directly containing [who] (a person or list dn): lists one of
   whose member values is [who] — a vd with the target as second
   operand. *)
let lists_containing_query who =
  Ast.value_dn all_lists
    (Ast.Atomic { Ast.base = who; scope = Ast.Base; filter = Afilter.Present Schema.object_class })
    "member"

(* Direct member entries of one list: candidates (persons or nested
   lists) whose dn appears among the list's member values — a dv with
   the list itself as the referencing side. *)
let direct_members_query list =
  Ast.dn_value
    (Ast.Or (all_people, all_lists))
    (Ast.Atomic { Ast.base = list; scope = Ast.Base; filter = Afilter.Present "member" })
    "member"

(* Empty lists: count(member) = 0 — a simple aggregate selection. *)
let empty_lists_query =
  Ast.gsel all_lists
    {
      Ast.lhs = Ast.A_entry (Ast.Ea_agg (Ast.Count, Ast.Self "member"));
      op = Ast.Eq;
      rhs = Ast.A_const 0;
    }

(* Lists that directly contain an entry with the given surname
   (Example 5.1's "unambiguous location" pattern, via references). *)
let lists_with_surname_query sur =
  Ast.value_dn all_lists
    (Ast.atomic (Dn.of_string people_base) (Afilter.Str_eq ("surName", sur)))
    "member"

(* --- Transitive membership --------------------------------------------------- *)

(* The closure of [list]'s membership: persons reachable through any
   chain of nested lists.  Each round is one dv query against the
   current frontier of list dn's; visited lists stop cycles.  Returns
   the persons and the set of lists traversed. *)
let transitive_members engine list =
  let module Sset = Set.Make (String) in
  let rec go visited persons frontier rounds =
    match frontier with
    | [] -> (persons, visited, rounds)
    | _ ->
        (* entries referenced by any frontier list *)
        let frontier_query =
          List.fold_left
            (fun acc d ->
              let b =
                Ast.Atomic
                  { Ast.base = d; scope = Ast.Base; filter = Afilter.Present "member" }
              in
              match acc with None -> Some b | Some q -> Some (Ast.Or (q, b)))
            None frontier
        in
        let members =
          match frontier_query with
          | None -> []
          | Some fq ->
              Engine.eval_entries engine
                (Ast.dn_value (Ast.Or (all_people, all_lists)) fq "member")
        in
        let new_lists, new_people =
          List.partition (fun e -> Entry.has_class e "groupOfNames") members
        in
        let persons =
          List.fold_left
            (fun acc p -> Sset.add (Entry.key p) acc)
            persons new_people
        in
        let visited =
          List.fold_left (fun acc d -> Sset.add (Dn.rev_key d) acc) visited frontier
        in
        let next =
          List.filter_map
            (fun l ->
              if Sset.mem (Entry.key l) visited then None else Some (Entry.dn l))
            new_lists
        in
        go visited persons next (rounds + 1)
  in
  let persons, visited, rounds =
    go Sset.empty Sset.empty [ list ] 0
  in
  let resolve keys =
    Instance.fold
      (fun acc e -> if Sset.mem (Entry.key e) keys then e :: acc else acc)
      []
      (Engine.instance engine)
    |> List.rev
  in
  ( resolve persons,
    List.filter (fun e -> Entry.has_class e "groupOfNames") (resolve visited),
    rounds )

(* The reverse closure: every list containing [who], directly or through
   nesting. *)
let lists_containing engine ~transitive who =
  let module Sset = Set.Make (String) in
  let step frontier =
    (* lists whose member values include any frontier dn *)
    List.concat_map
      (fun d -> Engine.eval_entries engine (lists_containing_query d))
      frontier
  in
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | _ ->
        let found = step frontier in
        let fresh =
          List.filter (fun e -> not (Sset.mem (Entry.key e) visited)) found
        in
        let visited =
          List.fold_left (fun acc e -> Sset.add (Entry.key e) acc) visited fresh
        in
        if transitive then go visited (List.map Entry.dn fresh) else visited
  in
  let keys = go Sset.empty [ who ] in
  Instance.fold
    (fun acc e -> if Sset.mem (Entry.key e) keys then e :: acc else acc)
    []
    (Engine.instance engine)
  |> List.rev

(* --- Synthetic list webs -------------------------------------------------------- *)

type gen_params = {
  seed : int;
  people : int;
  lists : int;
  members_per_list : int;
  nesting_prob : float;  (* probability a member is another list *)
}

let default_gen =
  { seed = 4242; people = 100; lists = 30; members_per_list = 5; nesting_prob = 0.3 }

let generate ?(params = default_gen) () =
  let rng = Prng.create params.seed in
  let people =
    List.init params.people (fun i ->
        person_entry
          ~uid:(Printf.sprintf "u%d" i)
          ~sur_name:(Prng.pick rng [| "smith"; "jones"; "garcia"; "milo"; "vista" |]))
  in
  let lists =
    List.init params.lists (fun i ->
        let members =
          List.init params.members_per_list (fun _ ->
              if Prng.flip rng params.nesting_prob && params.lists > 1 then
                "list:" ^ Printf.sprintf "l%d" (Prng.int rng params.lists)
              else Printf.sprintf "u%d" (Prng.int rng params.people))
          |> List.sort_uniq String.compare
        in
        list_entry ~name:(Printf.sprintf "l%d" i) ~members ())
  in
  Instance.of_entries (schema ())
    ([
       entry "dc=com" [ ("dc", Value.Str "com"); oc "dcObject" ];
       entry org_base [ ("dc", Value.Str "att"); oc "dcObject" ];
       entry people_base [ ("ou", Value.Str "people"); oc "organizationalUnit" ];
       entry lists_base [ ("ou", Value.Str "lists"); oc "organizationalUnit" ];
     ]
    @ people @ lists)
