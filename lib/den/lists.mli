(** Organizational and personal distribution lists — the companion
    application of Jagadish et al. [22] that Example 5.1 alludes to, and
    the paper's standing example of cyclic data through dn-valued
    attributes (Section 3.5).

    Direct membership questions are single queries; transitive
    membership is a fixpoint of dv rounds (the language itself has no
    recursion), cycle-safe over arbitrarily nested lists. *)

val schema : unit -> Schema.t
val org_base : string
val people_base : string
val lists_base : string
val person_dn : string -> string
val list_dn : string -> string
val person_entry : uid:string -> sur_name:string -> Entry.t

val list_entry :
  name:string -> ?owner:string -> members:string list -> unit -> Entry.t
(** Members are person uids, or ["list:<name>"] for nested lists. *)

val sample : unit -> Instance.t
(** Nested lists, a shared member, an empty list and a membership
    cycle. *)

val all_lists : Ast.t
val all_people : Ast.t

val lists_containing_query : Dn.t -> Ast.t
(** Lists whose [member] values include the given dn (one dv query). *)

val direct_members_query : Dn.t -> Ast.t
(** Entries referenced by the given list's [member] values. *)

val empty_lists_query : Ast.t
(** [(g lists count(member) = 0)]. *)

val lists_with_surname_query : string -> Ast.t
(** Lists directly containing a person with the given surname. *)

val transitive_members :
  Engine.t -> Dn.t -> Entry.t list * Entry.t list * int
(** [(persons, lists_traversed, rounds)]: the closure of one list's
    membership through any nesting, cycles included. *)

val lists_containing :
  Engine.t -> transitive:bool -> Dn.t -> Entry.t list
(** Every list containing the given dn, directly or (with [transitive])
    through nesting. *)

(** {1 Synthetic list webs} *)

type gen_params = {
  seed : int;
  people : int;
  lists : int;
  members_per_list : int;
  nesting_prob : float;
}

val default_gen : gen_params
val generate : ?params:gen_params -> unit -> Instance.t
