(** The TOPS dial-by-name DEN application (Examples 2.2 and 3.2,
    Figure 11).

    Each subscriber owns a personal subtree: a profile entry, prioritized
    query handling profiles (QHPs) as children, call appearances as
    grandchildren.  Call resolution is expressed entirely in the query
    languages: an L0 query (set differences encode the optional
    constraints) for the applicable QHPs, simple aggregate selection for
    the highest priority, a parents query for the appearances. *)

val schema : unit -> Schema.t
val profiles_base : string
val subscriber_dn : string -> string

val subscriber_entry :
  uid:string -> common_name:string -> sur_name:string -> Entry.t

val qhp_entry :
  uid:string ->
  name:string ->
  ?start_time:int ->
  ?end_time:int ->
  ?days:int list ->
  ?groups:string list ->
  priority:int ->
  unit ->
  Entry.t
(** [groups] restricts the QHP to callers presenting one of the listed
    caller groups (Section 2.2's access control); an unrestricted QHP
    accepts every caller. *)

val appearance_entry :
  uid:string ->
  qhp:string ->
  number:string ->
  priority:int ->
  ?timeout:int ->
  ?description:string ->
  unit ->
  Entry.t

val figure_11 : unit -> Instance.t
(** The reconstructed sample directory of Figure 11 (Jagadish's weekend
    and working-hours QHPs and their call appearances). *)

val matching_qhps_query :
  ?caller_groups:string list -> uid:string -> time:int -> day:int -> unit -> Ast.t
(** The L0 query selecting the subscriber's QHPs applicable at
    [time]/[day] ([time] in hhmm form, [day] 1-7) for a caller
    presenting [caller_groups]. *)

val resolution_query :
  ?caller_groups:string list -> uid:string -> time:int -> day:int -> unit -> Ast.t
(** The full L2 resolution query: call appearances of the
    highest-priority applicable QHP. *)

type resolution = {
  qhp : Entry.t option;  (** the winning query handling profile *)
  appearances : Entry.t list;  (** in priority order *)
}

val priority_of : Entry.t -> int

val resolve :
  ?caller_groups:string list ->
  Engine.t ->
  uid:string ->
  time:int ->
  day:int ->
  resolution

(** {1 Synthetic directories} *)

type gen_params = {
  seed : int;
  subscribers : int;
  qhps_per_subscriber : int;
  appearances_per_qhp : int;
}

val default_gen : gen_params
val generate : ?params:gen_params -> unit -> Instance.t
