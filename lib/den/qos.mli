(** The QoS / SLA policy-administration DEN application (Examples 2.1
    and 3.1, Figure 12), after the directory schema of Chaudhury et
    al. [11].

    SLAPolicyRules entries reference trafficProfile,
    policyValidityPeriod and SLADSAction entries through dn-valued
    attributes; a packet-conditioning decision composes the paper's
    operators: vd semijoins to the matching profiles/periods, simple
    aggregate selection for the highest priority, exception removal,
    and a dv join to the actions. *)

val schema : unit -> Schema.t

(** {1 The namespace of Figure 12} *)

val domain : string
val policies_base : string
val profiles_base : string
val periods_base : string
val actions_base : string
val policy_dn : string -> string
val profile_dn : string -> string
val period_dn : string -> string
val action_dn : string -> string

(** {1 Entry constructors} *)

val policy_entry :
  name:string ->
  scope:string ->
  priority:int ->
  exceptions:string list ->
  profiles:string list ->
  periods:string list ->
  action:string ->
  Entry.t

val profile_entry :
  name:string ->
  ?src_addr:string ->
  ?src_port:int ->
  ?dst_addr:string ->
  ?dst_port:int ->
  ?protocol:int ->
  unit ->
  Entry.t

val period_entry :
  name:string -> start_time:int -> end_time:int -> days:int list -> Entry.t

val action_entry :
  name:string -> permission:string -> peak_rate:int -> drop_priority:int ->
  Entry.t

val figure_12 : unit -> Instance.t
(** The reconstructed sample directory of Figure 12 (the dso policy with
    its profiles, periods, action, and the fatt/mail exception policies
    the text mentions). *)

(** {1 Packet matching} *)

type packet = {
  src_addr : string;
  src_port : int;
  dst_addr : string;
  dst_port : int;
  protocol : int;
}

type clock = { time : int; day_of_week : int }
(** [time] in yyyymmddhhmmss form; [day_of_week] 1-7 (6/7 = weekend). *)

val addr_matches : string -> string -> bool
(** Match a profile's wildcard address pattern against a packet
    address. *)

val profile_matches : packet -> Entry.t -> bool
(** A trafficProfile constrains the packet only through the attributes
    it specifies. *)

val period_matches : clock -> Entry.t -> bool

(** {1 The decision query} *)

type decision = { matched_policies : Entry.t list; actions : Entry.t list }

val decide : Engine.t -> pkt:packet -> clock:clock -> decision
(** The Section 2.1 semantics: applicable policies (profile and period
    both match), highest priority, minus policies with an applicable
    same-priority exception; plus their actions. *)

val example_7_1_query : string
(** The paper's composed L3 query: the action of the highest-priority
    policy governing SMTP traffic. *)

(** {1 Policy conflict detection (Section 2.1)} *)

type conflict = { policy_a : Entry.t; policy_b : Entry.t; reason : string }

val patterns_may_overlap : string -> string -> bool
val profiles_may_overlap : Entry.t -> Entry.t -> bool
val periods_may_overlap : Entry.t -> Entry.t -> bool

val conflicts : Instance.t -> conflict list
(** Unresolved conflicts: same-priority policy pairs with overlapping
    applicability, different actions and no exception relation.
    Conservative (never misses a real conflict; may flag subtle
    non-overlaps). *)

val pp_conflict : Format.formatter -> conflict -> unit

(** {1 Synthetic repositories} *)

type gen_params = {
  seed : int;
  n_policies : int;
  n_profiles : int;
  n_periods : int;
  n_actions : int;
  profiles_per_policy : int;
  periods_per_policy : int;
  exception_prob : float;
  priority_levels : int;
}

val default_gen : gen_params
val generate : ?params:gen_params -> unit -> Instance.t
val random_packet : Prng.t -> packet
val random_clock : Prng.t -> clock
