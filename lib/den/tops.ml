(* The TOPS dial-by-name DEN application (Examples 2.2 and 3.2,
   Figure 11).

   Each subscriber owns a personal subtree: the subscriber profile entry,
   its prioritized query handling profiles (QHPs) as children, and call
   appearances as children of each QHP.  Call resolution is pure
   query-language work:

   - an L0 query (with set difference for the optional constraints)
     selects the QHPs matching the caller-supplied time and day;
   - the simple aggregate selection (g ... priority = min(min(priority)))
     keeps the highest-priority matching QHP (Section 6);
   - a parents query (L1) fetches its call appearances. *)

let schema () =
  let s = Schema.empty () in
  List.iter
    (fun (a, ty) -> Schema.declare_attr s a ty)
    [
      ("dc", Value.T_string);
      ("ou", Value.T_string);
      ("uid", Value.T_string);
      ("commonName", Value.T_string);
      ("surName", Value.T_string);
      ("QHPName", Value.T_string);
      ("startTime", Value.T_int);
      ("endTime", Value.T_int);
      ("daysOfWeek", Value.T_int);
      ("priority", Value.T_int);
      ("callerGroup", Value.T_string);
      ("CANumber", Value.T_string);
      ("CAType", Value.T_string);
      ("timeOut", Value.T_int);
      ("description", Value.T_string);
    ];
  Schema.declare_class s "dcObject" [ "dc" ];
  Schema.declare_class s "organizationalUnit" [ "ou" ];
  Schema.declare_class s "inetOrgPerson" [ "uid"; "commonName"; "surName" ];
  Schema.declare_class s "TOPSSubscriber" [ "uid" ];
  Schema.declare_class s "QHP"
    [ "QHPName"; "startTime"; "endTime"; "daysOfWeek"; "priority"; "callerGroup" ];
  Schema.declare_class s "callAppearance"
    [ "CANumber"; "CAType"; "priority"; "timeOut"; "description" ];
  s

let oc c = (Schema.object_class, Value.Str c)
let profiles_base = "ou=userProfiles, dc=research, dc=att, dc=com"
let subscriber_dn uid = Printf.sprintf "uid=%s, %s" uid profiles_base
let entry d attrs = Entry.make (Dn.of_string d) attrs

let subscriber_entry ~uid ~common_name ~sur_name =
  entry (subscriber_dn uid)
    [
      ("uid", Value.Str uid);
      ("commonName", Value.Str common_name);
      ("surName", Value.Str sur_name);
      oc "inetOrgPerson";
      oc "TOPSSubscriber";
    ]

let qhp_entry ~uid ~name ?start_time ?end_time ?(days = []) ?(groups = [])
    ~priority () =
  entry (Printf.sprintf "QHPName=%s, %s" name (subscriber_dn uid))
    ([
       ("QHPName", Value.Str name);
       ("priority", Value.Int priority);
       oc "QHP";
     ]
    @ (match start_time with Some t -> [ ("startTime", Value.Int t) ] | None -> [])
    @ (match end_time with Some t -> [ ("endTime", Value.Int t) ] | None -> [])
    @ List.map (fun d -> ("daysOfWeek", Value.Int d)) days
    @ List.map (fun g -> ("callerGroup", Value.Str g)) groups)

let appearance_entry ~uid ~qhp ~number ~priority ?(timeout = 30) ?description () =
  (* Built programmatically: an all-digit CANumber inside a dn string
     would read back as an int, but the attribute is string-typed. *)
  let dn =
    Dn.child
      (Dn.child
         (Dn.of_string (subscriber_dn uid))
         (Rdn.single "QHPName" (Value.Str qhp)))
      (Rdn.single "CANumber" (Value.Str number))
  in
  Entry.make dn
    ([
       ("CANumber", Value.Str number);
       ("priority", Value.Int priority);
       ("timeOut", Value.Int timeout);
       oc "callAppearance";
     ]
    @ match description with Some d -> [ ("description", Value.Str d) ] | None -> [])

(* The sample directory of Figure 11: Jagadish's subscriber entry, his
   weekend QHP (voice mailbox only) and working-hours QHP (office phone,
   then secretary, then voice mail). *)
let figure_11 () =
  let sc = schema () in
  Instance.of_entries sc
    [
      entry "dc=com" [ ("dc", Value.Str "com"); oc "dcObject" ];
      entry "dc=att, dc=com" [ ("dc", Value.Str "att"); oc "dcObject" ];
      entry "dc=research, dc=att, dc=com"
        [ ("dc", Value.Str "research"); oc "dcObject" ];
      entry profiles_base
        [ ("ou", Value.Str "userProfiles"); oc "organizationalUnit" ];
      subscriber_entry ~uid:"jag" ~common_name:"h jagadish" ~sur_name:"jagadish";
      qhp_entry ~uid:"jag" ~name:"weekend" ~days:[ 6; 7 ] ~priority:1 ();
      qhp_entry ~uid:"jag" ~name:"workinghours" ~start_time:0830 ~end_time:1730
        ~priority:2 ();
      appearance_entry ~uid:"jag" ~qhp:"workinghours" ~number:"9733608750"
        ~priority:1 ~timeout:30 ();
      appearance_entry ~uid:"jag" ~qhp:"workinghours" ~number:"9733608751"
        ~priority:2 ~timeout:20 ~description:"secretary" ();
      appearance_entry ~uid:"jag" ~qhp:"workinghours" ~number:"9733608752"
        ~priority:3 ~timeout:60 ~description:"voice mail" ();
      appearance_entry ~uid:"jag" ~qhp:"weekend" ~number:"9733608752" ~priority:1
        ~timeout:60 ~description:"voice mail" ();
    ]

(* --- Call resolution ------------------------------------------------------ *)

let atomic ?(base = profiles_base) filter = Ast.atomic (Dn.of_string base) filter

(* QHPs under [subscriber] applicable at [time]/[day] for a caller in
   [caller_groups]: a QHP constrains the call only through the
   attributes it specifies, so the L0 query subtracts the QHPs whose
   specified constraints fail:

     qhps - (startTime > t) - (endTime < t)
          - ((present daysOfWeek) - (daysOfWeek=d))
          - ((present callerGroup) - (callerGroup=g1) - ... - (callerGroup=gk))

   The callerGroup term realizes the paper's access control: "QHPs ...
   allow subscribers to control access by specifying who can reach
   them" (Section 2.2). *)
let matching_qhps_query ?(caller_groups = []) ~uid ~time ~day () =
  let base = subscriber_dn uid in
  let qhps = atomic ~base (Afilter.Str_eq (Schema.object_class, "QHP")) in
  let bad_start = atomic ~base (Afilter.Int_cmp ("startTime", Afilter.Gt, time)) in
  let bad_end = atomic ~base (Afilter.Int_cmp ("endTime", Afilter.Lt, time)) in
  let has_days = atomic ~base (Afilter.Present "daysOfWeek") in
  let right_day = atomic ~base (Afilter.Int_cmp ("daysOfWeek", Afilter.Eq, day)) in
  let restricted = atomic ~base (Afilter.Present "callerGroup") in
  let group_ok g = atomic ~base (Afilter.Str_eq ("callerGroup", g)) in
  let not_my_groups =
    List.fold_left
      (fun acc g -> Ast.(acc --- group_ok g))
      restricted caller_groups
  in
  Ast.(qhps --- bad_start --- bad_end --- (has_days --- right_day) --- not_my_groups)

(* The complete resolution query: call appearances whose parent is the
   highest-priority applicable QHP. *)
let resolution_query ?caller_groups ~uid ~time ~day () =
  let base = subscriber_dn uid in
  let best_qhp =
    Ast.gsel
      (matching_qhps_query ?caller_groups ~uid ~time ~day ())
      {
        Ast.lhs = Ast.A_entry (Ast.Ea_agg (Ast.Min, Ast.Self "priority"));
        op = Ast.Eq;
        rhs =
          Ast.A_entry_set
            (Ast.Esa_agg (Ast.Min, Ast.Ea_agg (Ast.Min, Ast.Self "priority")));
      }
  in
  let appearances =
    atomic ~base (Afilter.Str_eq (Schema.object_class, "callAppearance"))
  in
  Ast.parents appearances best_qhp

type resolution = {
  qhp : Entry.t option;  (* the winning query handling profile *)
  appearances : Entry.t list;  (* in priority order *)
}

let priority_of e =
  match Entry.int_values e "priority" with p :: _ -> p | [] -> max_int

(* Resolve a call: returns the chosen QHP and its call appearances in
   priority order (the order the TOPS application tries them). *)
let resolve ?caller_groups engine ~uid ~time ~day =
  let best =
    Engine.eval_entries engine
      (Ast.gsel
         (matching_qhps_query ?caller_groups ~uid ~time ~day ())
         {
           Ast.lhs = Ast.A_entry (Ast.Ea_agg (Ast.Min, Ast.Self "priority"));
           op = Ast.Eq;
           rhs =
             Ast.A_entry_set
               (Ast.Esa_agg (Ast.Min, Ast.Ea_agg (Ast.Min, Ast.Self "priority")));
         })
  in
  let appearances =
    Engine.eval_entries engine (resolution_query ?caller_groups ~uid ~time ~day ())
    |> List.sort (fun a b -> Int.compare (priority_of a) (priority_of b))
  in
  { qhp = (match best with q :: _ -> Some q | [] -> None); appearances }

(* --- Synthetic TOPS directories -------------------------------------------- *)

type gen_params = {
  seed : int;
  subscribers : int;
  qhps_per_subscriber : int;
  appearances_per_qhp : int;
}

let default_gen =
  { seed = 2021; subscribers = 50; qhps_per_subscriber = 3; appearances_per_qhp = 2 }

let generate ?(params = default_gen) () =
  let rng = Prng.create params.seed in
  let sc = schema () in
  let scaffold =
    [
      entry "dc=com" [ ("dc", Value.Str "com"); oc "dcObject" ];
      entry "dc=att, dc=com" [ ("dc", Value.Str "att"); oc "dcObject" ];
      entry "dc=research, dc=att, dc=com"
        [ ("dc", Value.Str "research"); oc "dcObject" ];
      entry profiles_base
        [ ("ou", Value.Str "userProfiles"); oc "organizationalUnit" ];
    ]
  in
  let surnames = [| "smith"; "jones"; "garcia"; "tanaka"; "mueller" |] in
  let subscriber i =
    let uid = Printf.sprintf "user%d" i in
    let sub =
      subscriber_entry ~uid ~common_name:(Printf.sprintf "user %d" i)
        ~sur_name:(Prng.pick rng surnames)
    in
    let qhps =
      List.concat
        (List.init params.qhps_per_subscriber (fun j ->
             let name = Printf.sprintf "qhp%d" j in
             let qhp =
               if Prng.flip rng 0.4 then
                 qhp_entry ~uid ~name
                   ~days:[ 1 + Prng.int rng 7 ]
                   ~priority:(1 + j) ()
               else
                 let start_time = Prng.int rng 1200 in
                 qhp_entry ~uid ~name ~start_time
                   ~end_time:(start_time + 600 + Prng.int rng 600)
                   ~priority:(1 + j) ()
             in
             let apps =
               List.init params.appearances_per_qhp (fun k ->
                   appearance_entry ~uid ~qhp:name
                     ~number:(Printf.sprintf "973%03d%02d%02d" i j k)
                     ~priority:(1 + k)
                     ~timeout:(10 + Prng.int rng 50)
                     ())
             in
             qhp :: apps))
    in
    sub :: qhps
  in
  Instance.of_entries sc
    (scaffold @ List.concat (List.init params.subscribers subscriber))
