(* Distinguished names and the hierarchy they induce (Definition 3.2).

   A dn is a sequence of rdn's, most specific first:
   [dn(r) = rdn(r) ; dn(parent r)].  All evaluation algorithms rely on the
   lexicographic ordering of the *reversed* rdn sequence (Section 4.2): in
   that order an ancestor's key is a proper prefix of every descendant's
   key, so each subtree occupies a contiguous range. *)

type t = Value.dn

let root : t = []
let compare = Value.compare_dn
let equal a b = compare a b = 0
let rdn (t : t) = match t with [] -> None | r :: _ -> Some r
let parent (t : t) = match t with [] -> None | _ :: rest -> Some rest
let child (t : t) rdn : t = rdn :: t
let depth (t : t) = List.length t

(* Proper ancestors, nearest first: the non-empty proper suffixes plus the
   forest root is *not* an entry, so we stop at the last non-empty suffix. *)
let rec ancestors (t : t) =
  match t with [] | [ _ ] -> [] | _ :: rest -> rest :: ancestors rest

let to_string = Value.dn_to_string
let pp ppf t = Fmt.string ppf (to_string t)

(* --- Hierarchy predicates ------------------------------------------- *)

let is_parent_of ~parent:p ~child:c =
  match c with [] -> false | _ :: rest -> equal p rest

let is_child_of ~child:c ~parent:p = is_parent_of ~parent:p ~child:c

(* [p] is a proper ancestor of [d] iff [p] is a proper suffix of [d]. *)
let is_ancestor_of ~ancestor:p ~descendant:d =
  let lp = List.length p and ld = List.length d in
  lp < ld
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  equal p (drop (ld - lp) d)

let is_descendant_of ~descendant:d ~ancestor:p = is_ancestor_of ~ancestor:p ~descendant:d

(* Reflexive variant used by the [sub] search scope. *)
let is_self_or_descendant_of ~descendant:d ~ancestor:p =
  equal p d || is_ancestor_of ~ancestor:p ~descendant:d

(* --- Reverse-lexicographic order ------------------------------------ *)

(* The canonical sort order of the whole system (Section 4.2) is the
   lexicographic order of [rev_key]: a byte string serializing the rdn
   sequence from the root down, each rdn terminated by '\x01'.  Because
   '\x01' sorts below every byte that can appear inside a serialized rdn,
   [rev_key ancestor] is a proper prefix of [rev_key descendant] and each
   subtree occupies a contiguous key range.  Values are serialized with a
   one-character type tag so that distinct dn's always get distinct keys
   (e.g. the int 2 vs the string "2"). *)
let escape_key s =
  if String.exists (fun c -> c = '\x01' || c = '\x02') s then begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        if c = '\x01' || c = '\x02' then begin
          Buffer.add_char b '\x02';
          Buffer.add_char b (Char.chr (Char.code c + 0x10))
        end
        else Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let rec value_key = function
  | Value.Str s -> "s" ^ s
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Dn d -> "d" ^ raw_key d

and rdn_key rdn =
  String.concat "+"
    (List.map (fun (a, v) -> a ^ "=" ^ Value.escape (value_key v)) rdn)

and raw_key (t : t) =
  let b = Buffer.create 64 in
  List.iter
    (fun rdn ->
      Buffer.add_string b (escape_key (rdn_key rdn));
      Buffer.add_char b '\x01')
    (List.rev t);
  Buffer.contents b

let rev_key = raw_key

(* Derived from [rev_key] so that every component of the system agrees on
   a single total order with the ancestor-prefix property. *)
let compare_rev (a : t) (b : t) = String.compare (rev_key a) (rev_key b)

(* --- Parsing --------------------------------------------------------- *)

exception Parse_error of string

(* Split [s] on [sep] at top level, honouring backslash escapes. *)
let split_escaped sep s =
  let parts = ref [] in
  let b = Buffer.create 16 in
  let n = String.length s in
  let rec loop i =
    if i >= n then parts := Buffer.contents b :: !parts
    else if s.[i] = '\\' && i + 1 < n then begin
      Buffer.add_char b s.[i + 1];
      loop (i + 2)
    end
    else if s.[i] = sep then begin
      parts := Buffer.contents b :: !parts;
      Buffer.clear b;
      loop (i + 1)
    end
    else begin
      Buffer.add_char b s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  List.rev !parts

let parse_pair lookup s =
  match String.index_opt s '=' with
  | None -> raise (Parse_error (Printf.sprintf "rdn component %S lacks '='" s))
  | Some i ->
      let attr = String.trim (String.sub s 0 i) in
      let v = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      if attr = "" then raise (Parse_error "empty attribute name in rdn");
      let value =
        match lookup attr with
        | Some Value.T_string -> Value.Str v
        | Some Value.T_int -> (
            match int_of_string_opt v with
            | Some i -> Value.Int i
            | None ->
                raise
                  (Parse_error
                     (Printf.sprintf "attribute %s is int-typed, got %S" attr v)))
        | Some Value.T_dn ->
            raise (Parse_error "dn-typed attributes cannot name entries")
        | None -> Value.of_string_untyped v
      in
      (attr, value)

(* Parse an LDAP-style dn string: rdn's separated by ',', multi-valued
   rdn components separated by '+'.  The empty string is the forest root.
   Note '=' signs inside values survive because only the first '=' of a
   component separates attribute from value — but split_escaped has
   already removed backslash escapes, so escaped separators are literal. *)
let of_string_with ~lookup s =
  let s = String.trim s in
  if s = "" then root
  else
    split_escaped ',' s
    |> List.map (fun rdn_str ->
           let rdn_str = String.trim rdn_str in
           if rdn_str = "" then raise (Parse_error "empty rdn in dn string");
           Rdn.normalize (List.map (parse_pair lookup) (split_escaped '+' rdn_str)))

let of_string s = of_string_with ~lookup:(fun _ -> None) s
let of_string_opt s = try Some (of_string s) with Parse_error _ -> None
