(* A mutable directory server state with LDAP-style update operations.

   The paper's languages are read-only over an instance; deployed
   directories also take updates ("read/write interactive access",
   Section 1).  This module wraps an {!Instance} with the standard
   update suite — add, delete, modify (add/delete/replace values),
   modify-dn with subtree rename — enforcing Definition 3.2 plus the
   LDAP structural rules: an entry's parent must exist (unless the entry
   is added as a namespace root), and deletion is leaf-only unless
   subtree deletion is requested.

   Every mutation revalidates the affected entries, so a directory can
   never leave the model. *)

type update = { dn : Dn.t; subtree : bool }

type t = {
  mutable instance : Instance.t;
  mutable generation : int;
  mutable hooks : (update -> unit) list;
}

type error =
  | Invalid of Instance.violation
  | No_such_entry of Dn.t
  | Parent_missing of Dn.t
  | Has_children of Dn.t
  | Rdn_would_change of Dn.t  (* modify may not break rdn(r) <= val(r) *)

let pp_error ppf = function
  | Invalid v -> Instance.pp_violation ppf v
  | No_such_entry dn -> Fmt.pf ppf "no such entry: %a" Dn.pp dn
  | Parent_missing dn -> Fmt.pf ppf "parent of %a does not exist" Dn.pp dn
  | Has_children dn -> Fmt.pf ppf "%a has children (delete them first)" Dn.pp dn
  | Rdn_would_change dn ->
      Fmt.pf ppf "modification would remove an rdn value of %a" Dn.pp dn

let create instance = { instance; generation = 0; hooks = [] }
let of_schema schema = create (Instance.empty schema)
let instance t = t.instance
let schema t = Instance.schema t.instance
let size t = Instance.size t.instance

let generation t = t.generation
(* bumped on every successful mutation; engines use it to know when
   their indexes are stale *)

let on_update t f = t.hooks <- t.hooks @ [ f ]

let commit t instance updates =
  t.instance <- instance;
  t.generation <- t.generation + 1;
  List.iter (fun f -> List.iter f updates) t.hooks;
  Ok ()

(* --- Add ----------------------------------------------------------------- *)

let add ?(as_root = false) t entry =
  let dn = Entry.dn entry in
  let parent_ok =
    as_root
    ||
    match Dn.parent dn with
    | None | Some [] -> true
    | Some p -> Instance.mem t.instance p
  in
  if not parent_ok then Error (Parent_missing dn)
  else
    match Instance.add t.instance entry with
    | updated -> commit t updated [ { dn; subtree = false } ]
    | exception Instance.Invalid v -> Error (Invalid v)

(* --- Delete -------------------------------------------------------------- *)

let has_children t dn =
  List.exists
    (fun e -> not (Dn.equal (Entry.dn e) dn))
    (Instance.children t.instance dn)

let delete ?(subtree = false) t dn =
  if not (Instance.mem t.instance dn) then Error (No_such_entry dn)
  else if subtree then
    let doomed = Instance.subtree t.instance dn in
    commit t
      (List.fold_left
         (fun acc e -> Instance.remove acc (Entry.dn e))
         t.instance doomed)
      [ { dn; subtree = true } ]
  else if has_children t dn then Error (Has_children dn)
  else commit t (Instance.remove t.instance dn) [ { dn; subtree = false } ]

(* --- Modify -------------------------------------------------------------- *)

type modification =
  | Add_value of string * Value.t
  | Delete_value of string * Value.t
  | Delete_attr of string
  | Replace of string * Value.t list

let apply_modification attrs = function
  | Add_value (a, v) ->
      if List.exists (fun (a', v') -> String.equal a a' && Value.equal v v') attrs
      then attrs  (* val(r) is a set *)
      else (a, v) :: attrs
  | Delete_value (a, v) ->
      List.filter
        (fun (a', v') -> not (String.equal a a' && Value.equal v v'))
        attrs
  | Delete_attr a -> List.filter (fun (a', _) -> not (String.equal a a')) attrs
  | Replace (a, vs) ->
      List.filter (fun (a', _) -> not (String.equal a a')) attrs
      @ List.map (fun v -> (a, v)) vs

let modify t dn mods =
  match Instance.find t.instance dn with
  | None -> Error (No_such_entry dn)
  | Some e ->
      let attrs = List.fold_left apply_modification (Entry.attrs e) mods in
      let updated = Entry.make dn attrs in
      (* the rdn must stay among the values (Def 3.2(d)(ii)) *)
      let rdn_ok =
        match Entry.rdn updated with
        | Some rdn -> Rdn.subset_of_values rdn (Entry.attrs updated)
        | None -> false
      in
      if not rdn_ok then Error (Rdn_would_change dn)
      else begin
        match Instance.replace t.instance updated with
        | updated_instance -> commit t updated_instance [ { dn; subtree = false } ]
        | exception Instance.Invalid v -> Error (Invalid v)
      end

(* --- Modify dn (rename) ---------------------------------------------------- *)

(* Rebase [dn] from old subtree root [from_] to [to_]: keep the rdn's
   below [from_], splice them onto [to_]. *)
let rebase_dn ~from_ ~to_ dn =
  let rec prefix n l =
    if n = 0 then [] else List.hd l :: prefix (n - 1) (List.tl l)
  in
  prefix (Dn.depth dn - Dn.depth from_) dn @ to_

(* Rename an entry: change its rdn and/or move it under a new superior.
   All descendants move with it; their attributes are untouched, but the
   renamed entry's attribute set is updated so the new rdn's pairs are
   present (and, if [delete_old_rdn], the old rdn's pairs are dropped
   unless still part of the new rdn). *)
let modify_dn ?(delete_old_rdn = true) ?new_superior t dn ~new_rdn =
  match Instance.find t.instance dn with
  | None -> Error (No_such_entry dn)
  | Some e -> (
      let parent =
        match new_superior with
        | Some p -> p
        | None -> ( match Dn.parent dn with Some p -> p | None -> [])
      in
      let parent_exists =
        parent = [] || Instance.mem t.instance parent
      in
      if not parent_exists then Error (Parent_missing (Dn.child parent new_rdn))
      else
        let new_dn = Dn.child parent new_rdn in
        if Instance.mem t.instance new_dn && not (Dn.equal new_dn dn) then
          Error (Invalid (Instance.Duplicate_dn new_dn))
        else
          (* adjust the renamed entry's attributes *)
          let old_rdn_pairs =
            match Entry.rdn e with Some r -> Rdn.pairs r | None -> []
          in
          let new_rdn_pairs = Rdn.pairs new_rdn in
          let attrs =
            Entry.attrs e
            |> List.filter (fun (a, v) ->
                   (not delete_old_rdn)
                   || (not
                         (List.exists
                            (fun (a', v') ->
                              String.equal a a' && Value.equal v v')
                            old_rdn_pairs))
                   || List.exists
                        (fun (a', v') -> String.equal a a' && Value.equal v v')
                        new_rdn_pairs)
          in
          let attrs =
            List.fold_left
              (fun acc (a, v) ->
                if
                  List.exists
                    (fun (a', v') -> String.equal a a' && Value.equal v v')
                    acc
                then acc
                else (a, v) :: acc)
              attrs new_rdn_pairs
          in
          let renamed = Entry.make new_dn attrs in
          (* move the whole subtree *)
          let descendants =
            List.filter
              (fun d -> not (Dn.equal (Entry.dn d) dn))
              (Instance.subtree t.instance dn)
          in
          let without =
            List.fold_left
              (fun acc d -> Instance.remove acc (Entry.dn d))
              (Instance.remove t.instance dn)
              descendants
          in
          match
            let with_renamed = Instance.add without renamed in
            List.fold_left
              (fun acc d ->
                let moved_dn = rebase_dn ~from_:dn ~to_:new_dn (Entry.dn d) in
                Instance.add acc (Entry.make moved_dn (Entry.attrs d)))
              with_renamed descendants
          with
          | updated ->
              (* the whole subtree moved: both roots' subtrees changed *)
              commit t updated
                [ { dn; subtree = true }; { dn = new_dn; subtree = true } ]
          | exception Instance.Invalid v -> Error (Invalid v))

(* --- Convenience ------------------------------------------------------------ *)

let find t dn = Instance.find t.instance dn
let mem t dn = Instance.mem t.instance dn
let validate t = Instance.validate t.instance

(* Apply a batch atomically: all-or-nothing. *)
let batch t (ops : (t -> (unit, error) result) list) =
  let saved = t.instance and saved_gen = t.generation in
  let rec run = function
    | [] -> Ok ()
    | op :: rest -> (
        match op t with
        | Ok () -> run rest
        | Error e ->
            t.instance <- saved;
            t.generation <- saved_gen;
            (* the successful prefix already notified; the rollback
               reverses it, so re-notify conservatively for everything *)
            List.iter (fun f -> f { dn = Dn.root; subtree = true }) t.hooks;
            Error e)
  in
  run ops
