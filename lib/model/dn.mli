(** Distinguished names and the hierarchy they induce (Definition 3.2),
    plus the canonical reverse-lexicographic order (Section 4.2) every
    algorithm in the system sorts by. *)

type t = Value.dn

val root : t
(** The empty sequence — the (virtual) root of the forest; not itself a
    directory entry. *)

val compare : t -> t -> int
(** Structural order (most-specific rdn first); for the canonical
    evaluation order use {!compare_rev}. *)

val equal : t -> t -> bool

val rdn : t -> Rdn.t option
(** The relative distinguished name (first element), if any. *)

val parent : t -> t option
(** Drop the first rdn; [None] on {!root}. *)

val child : t -> Rdn.t -> t
val depth : t -> int

val ancestors : t -> t list
(** Proper non-root ancestors, nearest first. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Hierarchy predicates} *)

val is_parent_of : parent:t -> child:t -> bool
val is_child_of : child:t -> parent:t -> bool

val is_ancestor_of : ancestor:t -> descendant:t -> bool
(** Proper ancestry: [is_ancestor_of ~ancestor:d ~descendant:d] is
    [false]. *)

val is_descendant_of : descendant:t -> ancestor:t -> bool

val is_self_or_descendant_of : descendant:t -> ancestor:t -> bool
(** Reflexive variant, used by the [sub] search scope. *)

(** {1 The canonical order}

    [rev_key] serializes the rdn sequence root-first, each rdn
    terminated by a byte below every in-rdn byte, so
    [rev_key ancestor] is a proper prefix of [rev_key descendant] and
    subtrees are contiguous key ranges; distinct dn's always get
    distinct keys. *)

val rev_key : t -> string
val compare_rev : t -> t -> int
(** [String.compare] on {!rev_key}s. *)

(** {1 Parsing} *)

exception Parse_error of string

val of_string_with : lookup:(string -> Value.ty option) -> string -> t
(** Schema-aware parse: [lookup] types rdn values (int attributes read
    as ints, string attributes keep digit strings as strings).
    @raise Parse_error on malformed input or type mismatches. *)

val of_string : string -> t
(** Parse an LDAP-style dn string ([a=v+b=w, c=x, dc=com]); backslash
    escapes protect separator characters; the empty string is
    {!root}; all-digit values read as ints.
    @raise Parse_error on malformed input. *)

val of_string_opt : string -> t option
