(* Directory instances — the directory information forest (Sections 3.2-3.3).

   An instance holds the entry set R keyed by distinguished name.  The map
   is keyed by the reverse-dn string key, so in-order traversal yields the
   canonical sorted order and each subtree is a contiguous key range (the
   same layout a disk-resident directory would use).

   Queries map instances to sub-instances over the same schema (Section 4.1),
   so query results can themselves be wrapped back into instances —
   the closure property the paper emphasizes. *)

module Smap = Map.Make (String)

type t = { schema : Schema.t; entries : Entry.t Smap.t }

type violation =
  | Duplicate_dn of Dn.t
  | Rdn_not_in_values of Dn.t  (* Def 3.2(d)(ii) *)
  | No_class of Dn.t  (* Def 3.2(b): class set must be non-empty *)
  | Unknown_class of Dn.t * string
  | Attr_not_allowed of Dn.t * string  (* Def 3.2(c)1 *)
  | Attr_wrong_type of Dn.t * string * Value.ty  (* Def 3.2(c)1 *)
  | Unknown_attr of Dn.t * string

let pp_violation ppf = function
  | Duplicate_dn dn -> Fmt.pf ppf "duplicate dn %a" Dn.pp dn
  | Rdn_not_in_values dn -> Fmt.pf ppf "rdn of %a not among its values" Dn.pp dn
  | No_class dn -> Fmt.pf ppf "%a belongs to no class" Dn.pp dn
  | Unknown_class (dn, c) -> Fmt.pf ppf "%a: unknown class %s" Dn.pp dn c
  | Attr_not_allowed (dn, a) ->
      Fmt.pf ppf "%a: attribute %s not allowed by any of its classes" Dn.pp dn a
  | Attr_wrong_type (dn, a, ty) ->
      Fmt.pf ppf "%a: attribute %s has a value that is not of type %s" Dn.pp dn
        a (Value.ty_to_string ty)
  | Unknown_attr (dn, a) -> Fmt.pf ppf "%a: undeclared attribute %s" Dn.pp dn a

exception Invalid of violation

let empty schema = { schema; entries = Smap.empty }
let schema t = t.schema
let size t = Smap.cardinal t.entries

(* Check one entry against Definition 3.2 (given the rest of R is checked
   separately for key uniqueness by the map). *)
let check_entry schema e =
  let dn = Entry.dn e in
  (match Entry.rdn e with
  | None -> raise (Invalid (Rdn_not_in_values dn))  (* root is not an entry *)
  | Some rdn ->
      if not (Rdn.subset_of_values rdn (Entry.attrs e)) then
        raise (Invalid (Rdn_not_in_values dn)));
  let class_names = Entry.classes e in
  if class_names = [] then raise (Invalid (No_class dn));
  List.iter
    (fun c ->
      if not (Schema.has_class schema c) then
        raise (Invalid (Unknown_class (dn, c))))
    class_names;
  List.iter
    (fun (a, v) ->
      match Schema.attr_type schema a with
      | None -> raise (Invalid (Unknown_attr (dn, a)))
      | Some ty ->
          if Value.type_of v <> ty then
            raise (Invalid (Attr_wrong_type (dn, a, ty)));
          if not (Schema.attr_allowed_by schema ~class_names a) then
            raise (Invalid (Attr_not_allowed (dn, a))))
    (Entry.attrs e)

let add ?(validate = true) t e =
  if validate then check_entry t.schema e;
  let key = Entry.key e in
  if Smap.mem key t.entries then raise (Invalid (Duplicate_dn (Entry.dn e)));
  { t with entries = Smap.add key e t.entries }

let replace ?(validate = true) t e =
  if validate then check_entry t.schema e;
  { t with entries = Smap.add (Entry.key e) e t.entries }

let remove t dn = { t with entries = Smap.remove (Dn.rev_key dn) t.entries }
let find t dn = Smap.find_opt (Dn.rev_key dn) t.entries
let mem t dn = Smap.mem (Dn.rev_key dn) t.entries

let of_entries ?(validate = true) schema es =
  List.fold_left (add ~validate) (empty schema) es

(* Wrap a result entry set back into an instance (closure property). *)
let of_result t es =
  List.fold_left
    (fun acc e -> { acc with entries = Smap.add (Entry.key e) e acc.entries })
    (empty t.schema) es

let iter f t = Smap.iter (fun _ e -> f e) t.entries
let fold f init t = Smap.fold (fun _ e acc -> f acc e) t.entries init
let to_list t = List.rev (fold (fun acc e -> e :: acc) [] t)

(* --- Subtree ranges --------------------------------------------------- *)

(* All entries in the subtree rooted at [base] (including [base] itself if
   present), in canonical order: the contiguous key range with prefix
   [rev_key base]. *)
let subtree t base =
  let prefix = Dn.rev_key base in
  let _, at, above = Smap.split prefix t.entries in
  let from_base = match at with Some e -> [ e ] | None -> [] in
  let rest =
    Smap.to_seq above
    |> Seq.take_while (fun (k, _) -> Entry.key_is_prefix ~prefix k)
    |> Seq.map snd |> List.of_seq
  in
  from_base @ rest

let children t base =
  let d = Dn.depth base + 1 in
  List.filter (fun e -> Dn.depth (Entry.dn e) = d) (subtree t base)

let roots t =
  fold
    (fun acc e ->
      match Dn.parent (Entry.dn e) with
      | Some p when p <> Dn.root && mem t p -> acc
      | _ -> e :: acc)
    [] t
  |> List.rev

(* Full well-formedness check of Definition 3.2; returns all violations. *)
let validate t =
  fold
    (fun acc e ->
      match check_entry t.schema e with
      | () -> acc
      | exception Invalid v -> v :: acc)
    [] t
  |> List.rev

(* --- External-memory view --------------------------------------------- *)

(* The instance as a disk-resident sorted list; no I/O is charged for the
   conversion itself (the directory is already on disk), scans of the
   result charge normally. *)
let to_ext_list pager t = Ext_list.of_array_resident pager (Array.of_list (to_list t))

let subtree_ext_list pager t base =
  Ext_list.of_array_resident pager (Array.of_list (subtree t base))
