(** Directory entries (Definition 3.2).

    An entry is its distinguished name plus a set of (attribute, value)
    pairs; several pairs may share an attribute (multi-valued
    attributes, footnote 2).  Its classes are derived from the values of
    [objectClass] (Definition 3.2(c)2).  The reverse-dn sort key is
    computed once and cached. *)

type t

val make : Dn.t -> (string * Value.t) list -> t
(** Build an entry; duplicate pairs collapse (val(r) is a set). *)

val dn : t -> Dn.t
val attrs : t -> (string * Value.t) list

val key : t -> string
(** The cached [Dn.rev_key]. *)

val rdn : t -> Rdn.t option

val values : t -> string -> Value.t list
(** All values of one attribute. *)

val value : t -> string -> Value.t option
val has_attr : t -> string -> bool
val has_pair : t -> string -> Value.t -> bool
val int_values : t -> string -> int list
val string_values : t -> string -> string list
val dn_values : t -> string -> Value.dn list

val classes : t -> string list
(** The values of [objectClass]. *)

val has_class : t -> string -> bool

val compare_rev : t -> t -> int
(** The canonical evaluation order (reverse-dn lexicographic). *)

val equal_dn : t -> t -> bool

val is_parent_of : parent:t -> child:t -> bool
val is_ancestor_of : ancestor:t -> descendant:t -> bool

val key_is_prefix : prefix:string -> string -> bool
(** Byte-prefix test on cached keys. *)

val key_ancestor_of : ancestor:t -> descendant:t -> bool
(** Proper-ancestor test in O(key length), used in the algorithm hot
    loops. *)

val key_parent_of : parent:t -> child:t -> bool

val byte_size : t -> int
(** Approximate serialized size, for shipping accounting. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
