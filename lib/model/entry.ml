(* Directory entries (Definition 3.2).

   An entry is its distinguished name plus a multiset of (attribute,
   value) pairs — val(r) is formally a set, but several pairs may share
   an attribute name (footnote 2), so an attribute may be multi-valued.
   The classes of an entry are exactly the values of its [objectClass]
   attribute (Definition 3.2(c)2), so we derive them rather than store
   them.  Each entry caches its reverse-dn sort key; every algorithm in
   the system orders entries by that key. *)

type t = {
  dn : Dn.t;
  attrs : (string * Value.t) list;
  key : string;  (* cached Dn.rev_key dn *)
}

let make dn attrs =
  let attrs =
    List.sort_uniq
      (fun (a1, v1) (a2, v2) ->
        let c = String.compare a1 a2 in
        if c <> 0 then c else Value.compare v1 v2)
      attrs
  in
  { dn; attrs; key = Dn.rev_key dn }

let dn t = t.dn
let attrs t = t.attrs
let key t = t.key
let rdn t = Dn.rdn t.dn

(* All values of attribute [a] in the entry, in value order. *)
let values t a =
  List.filter_map
    (fun (a', v) -> if String.equal a a' then Some v else None)
    t.attrs

let value t a = match values t a with [] -> None | v :: _ -> Some v
let has_attr t a = List.exists (fun (a', _) -> String.equal a a') t.attrs
let has_pair t a v = List.exists (fun (a', v') -> String.equal a a' && Value.equal v v') t.attrs

let int_values t a = List.filter_map Value.as_int (values t a)
let string_values t a = List.filter_map Value.as_string (values t a)
let dn_values t a = List.filter_map Value.as_dn (values t a)

let classes t = string_values t Schema.object_class
let has_class t c = List.mem c (classes t)

(* The canonical order: reverse-dn lexicographic (Section 4.2). *)
let compare_rev a b = String.compare a.key b.key
let equal_dn a b = String.equal a.key b.key

let is_parent_of ~parent ~child = Dn.is_parent_of ~parent:parent.dn ~child:child.dn

let is_ancestor_of ~ancestor ~descendant =
  Dn.is_ancestor_of ~ancestor:ancestor.dn ~descendant:descendant.dn

(* Prefix tests on cached keys: O(key length), used in the hot loops of
   the stack algorithms instead of structural dn walks. *)
let key_is_prefix ~prefix s =
  let lp = String.length prefix in
  lp <= String.length s && String.equal prefix (String.sub s 0 lp)

let key_ancestor_of ~ancestor ~descendant =
  String.length ancestor.key < String.length descendant.key
  && key_is_prefix ~prefix:ancestor.key descendant.key

let key_parent_of ~parent ~child =
  key_ancestor_of ~ancestor:parent ~descendant:child
  && Dn.depth child.dn = Dn.depth parent.dn + 1

(* Approximate record size in bytes, for distributed-shipping accounting. *)
let byte_size t =
  let value_size v = String.length (Value.to_string v) in
  List.fold_left
    (fun acc (a, v) -> acc + String.length a + value_size v + 2)
    (String.length t.key + 16)
    t.attrs

let pp ppf t =
  Fmt.pf ppf "@[<v2>dn: %a@,%a@]" Dn.pp t.dn
    (Fmt.list ~sep:Fmt.cut (fun ppf (a, v) -> Fmt.pf ppf "%s: %a" a Value.pp v))
    t.attrs

let to_string t = Fmt.str "%a" pp t
