(* Relative distinguished names: non-empty sets of (attribute, value)
   pairs (Definition 3.2(d)).  The representation is a sorted,
   duplicate-free association list so structural equality coincides with
   set equality. *)

type t = Value.rdn

let compare = Value.compare_rdn
let equal a b = compare a b = 0

let normalize pairs : t =
  let sorted =
    List.sort_uniq
      (fun (a1, v1) (a2, v2) ->
        let c = String.compare a1 a2 in
        if c <> 0 then c else Value.compare v1 v2)
      pairs
  in
  if sorted = [] then invalid_arg "Rdn.normalize: rdn must be non-empty";
  sorted

(* Convenience for the common single-pair rdn's of the paper's examples. *)
let single attr value : t = [ (attr, value) ]
let pairs (t : t) = t
let to_string = Value.rdn_to_string
let pp ppf t = Fmt.string ppf (to_string t)

(* rdn(r) must be a subset of val(r) — Definition 3.2(d)(ii). *)
let subset_of_values (t : t) values =
  List.for_all
    (fun (a, v) ->
      List.exists (fun (a', v') -> String.equal a a' && Value.equal v v') values)
    t
