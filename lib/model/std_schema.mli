(** Standard schema presets — the Netscape Directory Server 3.1-style
    classes the paper's examples draw on (Section 3.5): dcObject,
    domain, organizationalUnit, person, organizationalPerson,
    inetOrgPerson, ntUser, groupOfNames, residentialPerson.

    Entries can combine any of these classes without subclassing
    (inetOrgPerson + ntUser, etc.) — the heterogeneity argument of
    Section 3.5 made concrete. *)

val string_attrs : string list
val int_attrs : string list
val dn_attrs : string list
val classes : (string * string list) list

val netscape_ds3 : unit -> Schema.t
(** A fresh schema with all of the above, ready to extend. *)

val dc_entry : parent:Dn.t -> string -> Entry.t
val ou_entry : parent:Dn.t -> string -> Entry.t

val inet_org_person :
  parent:Dn.t ->
  uid:string ->
  cn:string ->
  sn:string ->
  ?mail:string ->
  ?manager:Dn.t ->
  unit ->
  Entry.t
