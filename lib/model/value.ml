(* Attribute values (Section 3.1).

   The model's type set T contains [string], [int] and the complex type
   [distinguishedName] whose domain is sequences of sets of
   (attribute, value) pairs.  The three domains are mutually recursive —
   a dn is built from values — so the representation types for all three
   live here; the [Rdn] and [Dn] modules provide the operations. *)

type t = Str of string | Int of int | Dn of dn

(* A distinguished name: sequence of rdn's, leftmost = most specific
   (LDAP convention).  The parent dn of [rdn :: rest] is [rest]. *)
and dn = rdn list

(* A relative distinguished name: a non-empty set of (attribute, value)
   pairs, kept sorted and duplicate-free so equality is structural. *)
and rdn = (string * t) list

type ty = T_string | T_int | T_dn

let ty_to_string = function
  | T_string -> "string"
  | T_int -> "int"
  | T_dn -> "distinguishedName"

let type_of = function Str _ -> T_string | Int _ -> T_int | Dn _ -> T_dn

let rec compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Int _, (Str _ | Dn _) -> -1
  | (Str _ | Dn _), Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, Dn _ -> -1
  | Dn _, Str _ -> 1
  | Dn x, Dn y -> compare_dn x y

and compare_dn a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | r1 :: rest1, r2 :: rest2 ->
      let c = compare_rdn r1 r2 in
      if c <> 0 then c else compare_dn rest1 rest2

and compare_rdn a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (a1, v1) :: rest1, (a2, v2) :: rest2 ->
      let c = String.compare a1 a2 in
      if c <> 0 then c
      else
        let c = compare v1 v2 in
        if c <> 0 then c else compare_rdn rest1 rest2

let equal a b = compare a b = 0

(* Characters that must be escaped inside dn value strings. *)
let needs_escape c = c = ',' || c = '+' || c = '=' || c = '\\'

let escape s =
  if String.exists needs_escape s then begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_char b '\\';
        Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let rec to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Dn dn -> dn_to_string dn

and dn_escaped_string = function
  | Str s -> escape s
  | Int i -> string_of_int i
  | Dn dn -> escape (dn_to_string dn)

and rdn_to_string rdn =
  String.concat "+"
    (List.map (fun (a, v) -> a ^ "=" ^ dn_escaped_string v) rdn)

and dn_to_string dn = String.concat ", " (List.map rdn_to_string dn)

let pp ppf v = Fmt.string ppf (to_string v)

(* Untyped reading used by parsers when no schema is in scope: an all-digit
   token (with optional sign) reads as an int, anything else as a string.
   Schema-aware callers use [of_string_typed] for exactness. *)
let of_string_untyped s =
  match int_of_string_opt s with Some i -> Int i | None -> Str s

let of_string_typed ty s =
  match ty with
  | T_string -> Ok (Str s)
  | T_int -> (
      match int_of_string_opt s with
      | Some i -> Ok (Int i)
      | None -> Error (Printf.sprintf "%S is not an int" s))
  | T_dn -> Error "dn values must be parsed with Dn.of_string"

let as_int = function Int i -> Some i | Str _ | Dn _ -> None
let as_string = function Str s -> Some s | Int _ | Dn _ -> None
let as_dn = function Dn d -> Some d | Int _ | Str _ -> None
