(* Directory schemas (Definition 3.1).

   A schema is a 4-tuple (C, A, tau, alpha): class names, attributes, a
   typing function for attributes, and the allowed-attribute sets of each
   class.  Attributes are typed independently of classes, so an attribute
   shared by several classes has one type everywhere — the key difference
   from relation/class-centric models the paper points out. *)

type t = {
  attr_types : (string, Value.ty) Hashtbl.t;  (* tau *)
  class_attrs : (string, string list) Hashtbl.t;  (* alpha *)
}

let object_class = "objectClass"

let is_identifier s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-' || c = '.')
       s

let empty () =
  let t = { attr_types = Hashtbl.create 64; class_attrs = Hashtbl.create 16 } in
  (* Definition 3.1(b,c): objectClass is always present, typed string. *)
  Hashtbl.replace t.attr_types object_class Value.T_string;
  t

let declare_attr t name ty =
  if not (is_identifier name) then
    invalid_arg (Printf.sprintf "Schema.declare_attr: bad attribute name %S" name);
  (match Hashtbl.find_opt t.attr_types name with
  | Some ty' when ty' <> ty ->
      invalid_arg
        (Printf.sprintf "Schema.declare_attr: %s already typed %s" name
           (Value.ty_to_string ty'))
  | Some _ | None -> ());
  Hashtbl.replace t.attr_types name ty

let declare_class t name attrs =
  if not (is_identifier name) then
    invalid_arg (Printf.sprintf "Schema.declare_class: bad class name %S" name);
  List.iter
    (fun a ->
      if not (Hashtbl.mem t.attr_types a) then
        invalid_arg
          (Printf.sprintf "Schema.declare_class: undeclared attribute %S" a))
    attrs;
  (* objectClass is an allowed attribute of every class. *)
  let attrs =
    if List.mem object_class attrs then attrs else object_class :: attrs
  in
  Hashtbl.replace t.class_attrs name (List.sort_uniq String.compare attrs)

let attr_type t name = Hashtbl.find_opt t.attr_types name
let has_class t name = Hashtbl.mem t.class_attrs name
let allowed_attrs t cls = Hashtbl.find_opt t.class_attrs cls

let classes t =
  Hashtbl.fold (fun c _ acc -> c :: acc) t.class_attrs []
  |> List.sort String.compare

let attrs t =
  Hashtbl.fold (fun a ty acc -> (a, ty) :: acc) t.attr_types []
  |> List.sort Stdlib.compare

(* Is attribute [a] allowed by at least one of [class_names]
   (Definition 3.2(c)1)? *)
let attr_allowed_by t ~class_names a =
  List.exists
    (fun c ->
      match allowed_attrs t c with
      | Some allowed -> List.mem a allowed
      | None -> false)
    class_names

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter (fun (a, ty) -> Fmt.pf ppf "attr %s : %s@," a (Value.ty_to_string ty)) (attrs t);
  List.iter
    (fun c ->
      Fmt.pf ppf "class %s (%s)@," c
        (String.concat ", " (Option.value ~default:[] (allowed_attrs t c))))
    (classes t);
  Fmt.pf ppf "@]"
