(** A mutable directory server state with LDAP-style update operations —
    the read/write side the query languages leave implicit (Section 1's
    "read/write interactive access").

    All mutations revalidate against Definition 3.2 and the structural
    rules (parent must exist, deletion is leaf-only unless subtree
    deletion is requested); a directory can never leave the model. *)

type t

type error =
  | Invalid of Instance.violation
  | No_such_entry of Dn.t
  | Parent_missing of Dn.t
  | Has_children of Dn.t
  | Rdn_would_change of Dn.t
      (** a modify may not remove the rdn's values (Def 3.2(d)(ii)) *)

val pp_error : Format.formatter -> error -> unit

val create : Instance.t -> t
val of_schema : Schema.t -> t
val instance : t -> Instance.t
val schema : t -> Schema.t
val size : t -> int

val generation : t -> int
(** Bumped on every successful mutation; engines use it to detect stale
    indexes. *)

type update = { dn : Dn.t; subtree : bool }
(** The locus of a successful mutation: the entry at [dn] changed, and
    when [subtree] the whole subtree below it may have (subtree
    deletion, rename). *)

val on_update : t -> (update -> unit) -> unit
(** Register a hook called after every successful mutation, in
    registration order (result caches use this for footprint-precise
    invalidation).  [modify_dn] notifies both the old and the new
    subtree roots; a rolled-back {!batch} notifies for its successful
    prefix and then conservatively for the whole namespace. *)

val add : ?as_root:bool -> t -> Entry.t -> (unit, error) result
(** Insert a new entry; its parent must exist unless [as_root]. *)

val delete : ?subtree:bool -> t -> Dn.t -> (unit, error) result
(** Remove an entry; refuses on children unless [subtree]. *)

type modification =
  | Add_value of string * Value.t
  | Delete_value of string * Value.t
  | Delete_attr of string
  | Replace of string * Value.t list

val modify : t -> Dn.t -> modification list -> (unit, error) result
(** Apply attribute modifications in order, then revalidate. *)

val modify_dn :
  ?delete_old_rdn:bool ->
  ?new_superior:Dn.t ->
  t ->
  Dn.t ->
  new_rdn:Rdn.t ->
  (unit, error) result
(** Rename an entry (and implicitly its whole subtree), optionally
    moving it under a new superior; the new rdn's pairs are added to the
    entry's values, the old rdn's dropped when [delete_old_rdn]
    (default). *)

val find : t -> Dn.t -> Entry.t option
val mem : t -> Dn.t -> bool
val validate : t -> Instance.violation list

val batch : t -> (t -> (unit, error) result) list -> (unit, error) result
(** All-or-nothing application of a list of operations. *)
