(** Directory schemas (Definition 3.1).

    A schema is the 4-tuple [(C, A, tau, alpha)]: class names, typed
    attributes, and per-class allowed-attribute sets.  Attributes are
    typed independently of classes — the decoupling the paper contrasts
    with relational/OO models. *)

type t

val object_class : string
(** The distinguished ["objectClass"] attribute, present in every
    schema and allowed in every class, typed [string]. *)

val is_identifier : string -> bool
(** Attribute and class names: alphanumerics plus [_ - .]. *)

val empty : unit -> t
(** A schema containing only [objectClass]. *)

val declare_attr : t -> string -> Value.ty -> unit
(** Declare (or re-declare, idempotently) an attribute's type.
    @raise Invalid_argument on a bad name or a conflicting type. *)

val declare_class : t -> string -> string list -> unit
(** Declare a class with its allowed attributes (all previously
    declared); [objectClass] is added implicitly. *)

val attr_type : t -> string -> Value.ty option
val has_class : t -> string -> bool
val allowed_attrs : t -> string -> string list option

val classes : t -> string list
(** All class names, sorted. *)

val attrs : t -> (string * Value.ty) list
(** All attributes with their types, sorted. *)

val attr_allowed_by : t -> class_names:string list -> string -> bool
(** Definition 3.2(c)1: is the attribute allowed by at least one of the
    classes? *)

val pp : Format.formatter -> t -> unit
