(** Directory instances — the directory information forest
    (Sections 3.2-3.3).

    Entries are keyed by distinguished name; traversal follows the
    canonical reverse-dn order, so subtrees are contiguous.  Queries map
    instances to sub-instances over the same schema, and results can be
    wrapped back into instances ({!of_result}) — the closure property. *)

type t

(** Violations of Definition 3.2, reported by validation. *)
type violation =
  | Duplicate_dn of Dn.t
  | Rdn_not_in_values of Dn.t  (** Def 3.2(d)(ii) *)
  | No_class of Dn.t  (** Def 3.2(b) *)
  | Unknown_class of Dn.t * string
  | Attr_not_allowed of Dn.t * string  (** Def 3.2(c)1 *)
  | Attr_wrong_type of Dn.t * string * Value.ty  (** Def 3.2(c)1 *)
  | Unknown_attr of Dn.t * string

val pp_violation : Format.formatter -> violation -> unit

exception Invalid of violation

val empty : Schema.t -> t
val schema : t -> Schema.t
val size : t -> int

val add : ?validate:bool -> t -> Entry.t -> t
(** Insert a new entry.  @raise Invalid on a Definition 3.2 violation
    or a duplicate dn (validation defaults to on). *)

val replace : ?validate:bool -> t -> Entry.t -> t
(** Insert or overwrite. *)

val remove : t -> Dn.t -> t
val find : t -> Dn.t -> Entry.t option
val mem : t -> Dn.t -> bool
val of_entries : ?validate:bool -> Schema.t -> Entry.t list -> t

val of_result : t -> Entry.t list -> t
(** Wrap a query result back into an instance over the same schema. *)

val iter : (Entry.t -> unit) -> t -> unit
(** In canonical order. *)

val fold : ('acc -> Entry.t -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Entry.t list

val subtree : t -> Dn.t -> Entry.t list
(** All entries at or below [base], in canonical order. *)

val children : t -> Dn.t -> Entry.t list
(** [base] (if present) plus its children — the [one] scope. *)

val roots : t -> Entry.t list
(** Entries whose parent is absent (the forest roots). *)

val validate : t -> violation list
(** All Definition 3.2 violations (empty = well-formed). *)

val to_ext_list : Pager.t -> t -> Entry.t Ext_list.t
(** The instance as a disk-resident sorted list (no creation charge). *)

val subtree_ext_list : Pager.t -> t -> Dn.t -> Entry.t Ext_list.t
