(* Standard schema presets.

   The paper's examples draw their classes "from the default schema of
   Netscape Directory Server 3.1" (Section 3.5): dcObject, domain,
   organizationalUnit, inetOrgPerson, ntUser, groupOfNames and friends.
   This module provides those declarations so applications and the shell
   can build conventionally-shaped directories without re-declaring the
   same attributes; it also demonstrates the model's point that an entry
   can combine any classes (inetOrgPerson + TOPSSubscriber,
   inetOrgPerson + ntUser) with no subclass relationship. *)

let string_attrs =
  [
    "dc"; "ou"; "o"; "cn"; "commonName"; "sn"; "surName"; "givenName"; "uid";
    "mail"; "telephoneNumber"; "facsimileTelephoneNumber"; "title";
    "description"; "street"; "l"; "st"; "postalCode"; "c";
    "ntUserDomainId"; "displayName"; "labeledURI";
  ]

let int_attrs = [ "employeeNumber"; "roomNumber"; "priority"; "uidNumber" ]
let dn_attrs = [ "member"; "owner"; "manager"; "secretary"; "seeAlso" ]

let classes =
  [
    ("dcObject", [ "dc" ]);
    ("domain", [ "dc"; "description" ]);
    ("organization", [ "o"; "description"; "telephoneNumber"; "street"; "l" ]);
    ("organizationalUnit", [ "ou"; "description"; "telephoneNumber" ]);
    ("person", [ "cn"; "commonName"; "sn"; "surName"; "telephoneNumber";
                 "description" ]);
    ( "organizationalPerson",
      [ "cn"; "commonName"; "sn"; "surName"; "title"; "ou";
        "telephoneNumber"; "facsimileTelephoneNumber"; "street"; "l"; "st";
        "postalCode"; "roomNumber" ] );
    ( "inetOrgPerson",
      [ "cn"; "commonName"; "sn"; "surName"; "givenName"; "uid"; "mail";
        "telephoneNumber"; "title"; "displayName"; "labeledURI";
        "employeeNumber"; "manager"; "secretary"; "roomNumber" ] );
    ("ntUser", [ "cn"; "ntUserDomainId"; "description" ]);
    ("groupOfNames", [ "cn"; "member"; "owner"; "description"; "seeAlso" ]);
    ("residentialPerson", [ "cn"; "sn"; "street"; "l"; "st"; "postalCode" ]);
  ]

(* The preset, freshly built (schemas are mutable): every attribute and
   class above, ready to extend with application-specific classes. *)
let netscape_ds3 () =
  let s = Schema.empty () in
  List.iter (fun a -> Schema.declare_attr s a Value.T_string) string_attrs;
  List.iter (fun a -> Schema.declare_attr s a Value.T_int) int_attrs;
  List.iter (fun a -> Schema.declare_attr s a Value.T_dn) dn_attrs;
  List.iter (fun (c, attrs) -> Schema.declare_class s c attrs) classes;
  s

(* Convenience constructors over the preset. *)
let oc c = (Schema.object_class, Value.Str c)

let dc_entry ~parent name =
  Entry.make
    (Dn.child parent (Rdn.single "dc" (Value.Str name)))
    [ ("dc", Value.Str name); oc "dcObject"; oc "domain" ]

let ou_entry ~parent name =
  Entry.make
    (Dn.child parent (Rdn.single "ou" (Value.Str name)))
    [ ("ou", Value.Str name); oc "organizationalUnit" ]

let inet_org_person ~parent ~uid ~cn ~sn ?mail ?manager () =
  Entry.make
    (Dn.child parent (Rdn.single "uid" (Value.Str uid)))
    ([
       ("uid", Value.Str uid);
       ("cn", Value.Str cn);
       ("sn", Value.Str sn);
       oc "inetOrgPerson";
     ]
    @ (match mail with Some m -> [ ("mail", Value.Str m) ] | None -> [])
    @ match manager with
      | Some m -> [ ("manager", Value.Dn m) ]
      | None -> [])
