(** LDIF-style serialization of schemas and instances (RFC 2849 in
    spirit, restricted to the formal model).

    One record per entry ([dn:] line then [attr: value] lines, blank
    line separators), optionally preceded by a schema block
    ([attribute <name> <type>] / [class <name> <attrs...>] lines), so a
    single file round-trips a directory. *)

val schema_to_string : Schema.t -> string
val entry_to_string : Entry.t -> string
val instance_to_string : ?with_schema:bool -> Instance.t -> string

exception Parse_error of string

val of_string : ?schema:Schema.t -> string -> Instance.t
(** Parse a file.  Values are typed by the schema (given and/or declared
    in the file's schema block).  @raise Parse_error with a line
    number on malformed input; @raise Instance.Invalid on model
    violations. *)

val save : string -> Instance.t -> unit
(** Write an instance (with its schema block) to a file. *)

val load : ?schema:Schema.t -> string -> Instance.t
