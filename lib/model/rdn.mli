(** Relative distinguished names (Definition 3.2(d)).

    An rdn is a non-empty {e set} of (attribute, value) pairs — the
    paper's generalization of the single file-name component of UNIX
    paths.  Represented as a sorted duplicate-free association list so
    that structural equality is set equality. *)

type t = Value.rdn

val compare : t -> t -> int
val equal : t -> t -> bool

val normalize : (string * Value.t) list -> t
(** Sort and deduplicate.  @raise Invalid_argument on the empty list. *)

val single : string -> Value.t -> t
(** The common one-pair rdn of the paper's examples. *)

val pairs : t -> (string * Value.t) list
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val subset_of_values : t -> (string * Value.t) list -> bool
(** Definition 3.2(d)(ii): the rdn must be a subset of the entry's
    (attribute, value) pairs. *)
