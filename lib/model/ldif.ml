(* LDIF-style serialization of schemas and instances.

   A textual interchange format in the spirit of RFC 2849, restricted to
   the formal model: one record per entry, [attribute: value] lines, a
   leading [dn:] line, blank-line separators.  Values are typed by the
   schema on import; dn-valued attributes carry dn strings.  A schema
   block (lines starting with "attribute" / "class") may precede the
   entries, so one file round-trips a whole directory. *)

let schema_to_string schema =
  let b = Buffer.create 256 in
  Buffer.add_string b "# ndq schema\n";
  List.iter
    (fun (a, ty) ->
      if a <> Schema.object_class then
        Buffer.add_string b
          (Printf.sprintf "attribute %s %s\n" a (Value.ty_to_string ty)))
    (Schema.attrs schema);
  List.iter
    (fun c ->
      let attrs =
        Option.value ~default:[] (Schema.allowed_attrs schema c)
        |> List.filter (fun a -> a <> Schema.object_class)
      in
      Buffer.add_string b
        (Printf.sprintf "class %s %s\n" c (String.concat " " attrs)))
    (Schema.classes schema);
  Buffer.contents b

let entry_to_string e =
  let b = Buffer.create 128 in
  Buffer.add_string b ("dn: " ^ Dn.to_string (Entry.dn e) ^ "\n");
  List.iter
    (fun (a, v) ->
      Buffer.add_string b (Printf.sprintf "%s: %s\n" a (Value.to_string v)))
    (Entry.attrs e);
  Buffer.contents b

let instance_to_string ?(with_schema = true) instance =
  let b = Buffer.create 4096 in
  if with_schema then begin
    Buffer.add_string b (schema_to_string (Instance.schema instance));
    Buffer.add_char b '\n'
  end;
  Instance.iter
    (fun e ->
      Buffer.add_string b (entry_to_string e);
      Buffer.add_char b '\n')
    instance;
  Buffer.contents b

(* --- Parsing -------------------------------------------------------------- *)

exception Parse_error of string

let fail line msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let split_record_line lineno line =
  match String.index_opt line ':' with
  | None -> fail lineno (Printf.sprintf "expected 'attr: value' in %S" line)
  | Some i ->
      let attr = String.trim (String.sub line 0 i) in
      let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      (attr, v)

let typed_value schema lineno attr raw =
  match Schema.attr_type schema attr with
  | None -> fail lineno (Printf.sprintf "undeclared attribute %S" attr)
  | Some Value.T_int -> (
      match int_of_string_opt raw with
      | Some i -> Value.Int i
      | None -> fail lineno (Printf.sprintf "%S is not an int" raw))
  | Some Value.T_string -> Value.Str raw
  | Some Value.T_dn -> (
      try Value.Dn (Dn.of_string_with ~lookup:(Schema.attr_type schema) raw)
      with Dn.Parse_error m -> fail lineno (Printf.sprintf "bad dn: %s" m))

let parse_schema_line schema lineno line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | "attribute" :: name :: ty :: [] ->
      let ty =
        match ty with
        | "string" -> Value.T_string
        | "int" -> Value.T_int
        | "distinguishedName" | "dn" -> Value.T_dn
        | other -> fail lineno (Printf.sprintf "unknown type %S" other)
      in
      (try Schema.declare_attr schema name ty
       with Invalid_argument m -> fail lineno m)
  | "class" :: name :: attrs ->
      (try Schema.declare_class schema name attrs
       with Invalid_argument m -> fail lineno m)
  | _ -> fail lineno (Printf.sprintf "bad schema line %S" line)

(* Parse a full file: optional schema block, then entry records.  When
   [schema] is given, schema lines in the file extend it. *)
let of_string ?schema text =
  let schema = match schema with Some s -> s | None -> Schema.empty () in
  let lines = String.split_on_char '\n' text in
  let entries = ref [] in
  let current_dn = ref None in
  let current_attrs = ref [] in
  let flush lineno =
    match !current_dn with
    | None ->
        if !current_attrs <> [] then fail lineno "record without a dn: line"
    | Some dn ->
        entries := Entry.make dn (List.rev !current_attrs) :: !entries;
        current_dn := None;
        current_attrs := []
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" then flush lineno
      else if line.[0] = '#' then ()
      else if
        String.length line > 10
        && (String.sub line 0 10 = "attribute " || String.sub line 0 6 = "class ")
      then parse_schema_line schema lineno line
      else if String.length line > 6 && String.sub line 0 6 = "class " then
        parse_schema_line schema lineno line
      else
        let attr, v = split_record_line lineno line in
        if attr = "dn" then begin
          flush lineno;
          match Dn.of_string_with ~lookup:(Schema.attr_type schema) v with
          | dn -> current_dn := Some dn
          | exception Dn.Parse_error m -> fail lineno m
        end
        else
          match !current_dn with
          | None -> fail lineno "attribute line before any dn:"
          | Some _ ->
              current_attrs := (attr, typed_value schema lineno attr v) :: !current_attrs)
    lines;
  flush (List.length lines);
  Instance.of_entries schema (List.rev !entries)

(* --- Files ----------------------------------------------------------------- *)

let save path instance =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (instance_to_string instance))

let load ?schema path =
  In_channel.with_open_text path (fun ic ->
      of_string ?schema (In_channel.input_all ic))
