(** Attribute values (Section 3.1).

    The type set [T] contains [string], [int] and the complex type
    [distinguishedName], whose domain is sequences of sets of
    (attribute, value) pairs — mutually recursive with values, so the
    representation of all three lives here; {!Rdn} and {!Dn} provide
    the operations. *)

type t = Str of string | Int of int | Dn of dn

and dn = rdn list
(** A distinguished name: rdn's most-specific-first (LDAP convention);
    the parent of [rdn :: rest] is [rest]. *)

and rdn = (string * t) list
(** A relative distinguished name: a non-empty, sorted, duplicate-free
    set of (attribute, value) pairs. *)

type ty = T_string | T_int | T_dn
(** The three type names of the formal model. *)

val ty_to_string : ty -> string
val type_of : t -> ty

val compare : t -> t -> int
(** Structural total order: ints, then strings, then dn's. *)

val compare_dn : dn -> dn -> int
val compare_rdn : rdn -> rdn -> int
val equal : t -> t -> bool

val escape : string -> string
(** Backslash-escape the dn separator characters [, + = \ ]. *)

val to_string : t -> string
val rdn_to_string : rdn -> string
val dn_to_string : dn -> string
val pp : Format.formatter -> t -> unit

val of_string_untyped : string -> t
(** Schema-less reading: all-digit tokens read as ints, anything else
    as strings. *)

val of_string_typed : ty -> string -> (t, string) result
(** Schema-directed reading for [string] and [int]; dn values must go
    through [Dn.of_string]. *)

val as_int : t -> int option
val as_string : t -> string option
val as_dn : t -> dn option
