(** Character tries for string-attribute filters (Section 4.1: "trie and
    suffix tree indices" for wildcard string filters).  Node visits
    charge page reads. *)

type 'a t

val create : Pager.t -> 'a t

val size : 'a t -> int
(** Strings inserted. *)

val add : 'a t -> string -> 'a -> unit
(** Insert one string with a payload. *)

val find_exact : 'a t -> string -> 'a list
(** Payloads of exactly this string, in insertion order. *)

val find_prefix : 'a t -> string -> 'a list
(** Payloads of all strings with the given prefix. *)

(** Substring lookup via a suffix trie: every suffix of every indexed
    string is inserted, so the strings containing [sub] are those with
    a suffix extending [sub].  Payloads are deduplicated on query. *)
module Substr : sig
  type nonrec 'a t

  val create : Pager.t -> 'a t
  val add : 'a t -> string -> 'a -> unit
  val find_substring : 'a t -> string -> 'a list
  val count : 'a t -> int
end
