(** Character tries for string-attribute filters (Section 4.1: "trie and
    suffix tree indices" for wildcard string filters).  Node visits
    charge page reads. *)

type 'a t

val create : Pager.t -> 'a t

val size : 'a t -> int
(** Strings inserted. *)

val add : 'a t -> string -> 'a -> unit
(** Insert one string with a payload. *)

val find_exact : 'a t -> string -> 'a list
(** Payloads of exactly this string, in insertion order. *)

val find_prefix : 'a t -> string -> 'a list
(** Payloads of all strings with the given prefix. *)

val count_exact : 'a t -> string -> int
(** [List.length (find_exact t s)] without materializing: the descent
    is charged, the count is O(1) off the terminal list. *)

val count_prefix : 'a t -> string -> int
(** [List.length (find_prefix t s)] without collecting the subtree:
    O(|s|) page reads against maintained subtree counters, instead of
    the lookup's one read per subtree node. *)

(** Substring lookup via a suffix trie: every suffix of every indexed
    string is inserted, so the strings containing [sub] are those with
    a suffix extending [sub].  Payloads are deduplicated on query. *)
module Substr : sig
  type nonrec 'a t

  val create : Pager.t -> 'a t
  val add : 'a t -> string -> 'a -> unit
  val find_substring : 'a t -> string -> 'a list
  val count : 'a t -> int

  val count_substring : 'a t -> string -> int
  (** Upper bound on [List.length (find_substring t sub)] in O(|sub|)
      page reads: suffix occurrences are counted, so a string containing
      [sub] more than once is counted once per occurrence (the lookup
      dedups; the probe cannot without materializing). *)
end
