(* Character tries for string-attribute filters.

   Section 4.1 evaluates wildcard string filters "with the help of trie
   and suffix tree indices".  [Str_trie] is a plain payload-carrying trie
   supporting exact and prefix lookups; [Substr] (below) layers a suffix
   trie on top so that an arbitrary substring query [*mid*] becomes a
   prefix walk.  Node visits are charged as page reads. *)

type 'a node = {
  children : (char, 'a node) Hashtbl.t;
  mutable terminal : 'a list;  (* payloads of strings ending here *)
  mutable subtree_count : int;  (* payloads stored at or below this node *)
}

type 'a t = { pager : Pager.t; root : 'a node; mutable size : int }

let fresh_node () =
  { children = Hashtbl.create 4; terminal = []; subtree_count = 0 }
let create pager = { pager; root = fresh_node (); size = 0 }
let size t = t.size
let charge_read t = Io_stats.read_page (Pager.stats t.pager)
let charge_write t = Io_stats.write_page (Pager.stats t.pager)

let add t s payload =
  let rec walk node i =
    node.subtree_count <- node.subtree_count + 1;
    if i = String.length s then node.terminal <- payload :: node.terminal
    else
      let c = s.[i] in
      let child =
        match Hashtbl.find_opt node.children c with
        | Some n -> n
        | None ->
            let n = fresh_node () in
            Hashtbl.replace node.children c n;
            n
      in
      walk child (i + 1)
  in
  walk t.root 0;
  t.size <- t.size + 1;
  charge_write t

(* Locate the node reached by walking [s]; charges one read per step. *)
let descend t s =
  let rec walk node i =
    if i = String.length s then Some node
    else begin
      charge_read t;
      match Hashtbl.find_opt node.children s.[i] with
      | Some child -> walk child (i + 1)
      | None -> None
    end
  in
  walk t.root 0

let find_exact t s =
  match descend t s with Some n -> List.rev n.terminal | None -> []

(* Cardinality probes: the descent is charged like a lookup's, but the
   answer comes off the maintained subtree counters instead of a
   subtree collection — O(|s|) page reads however many strings match. *)
let count_exact t s =
  match descend t s with Some n -> List.length n.terminal | None -> 0

let count_prefix t s =
  match descend t s with Some n -> n.subtree_count | None -> 0

(* All payloads of strings with prefix [s] (the subtree below the walk). *)
let find_prefix t s =
  match descend t s with
  | None -> []
  | Some start ->
      let acc = ref [] in
      let rec collect node =
        charge_read t;
        List.iter (fun p -> acc := p :: !acc) node.terminal;
        Hashtbl.iter (fun _ child -> collect child) node.children
      in
      collect start;
      List.rev !acc

(* --- Substring (suffix-trie) index ------------------------------------ *)

module Substr = struct
  (* A suffix trie: every suffix of every indexed string is inserted, so
     the strings containing [sub] are exactly those with a suffix having
     prefix [sub].  Quadratic space in string length — acceptable for
     directory attribute values, which are short.  Payloads are deduped
     on query (the same string matches once however many suffixes hit). *)

  type nonrec 'a t = { trie : 'a t; mutable count : int }

  let create pager = { trie = create pager; count = 0 }

  let add t s payload =
    for i = 0 to String.length s - 1 do
      add t.trie (String.sub s i (String.length s - i)) payload
    done;
    (* Also index the empty suffix so [*] style scans see the string. *)
    add t.trie "" payload;
    t.count <- t.count + 1

  let find_substring t sub =
    let hits = find_prefix t.trie sub in
    (* Preserve first-hit order while deduping physical payloads. *)
    let seen = Hashtbl.create 16 in
    List.filter
      (fun p ->
        let k = Hashtbl.hash p in
        let dup =
          match Hashtbl.find_opt seen k with
          | Some ps -> List.memq p ps
          | None -> false
        in
        if dup then false
        else begin
          Hashtbl.replace seen k
            (p :: Option.value ~default:[] (Hashtbl.find_opt seen k));
          true
        end)
      hits

  let count t = t.count

  (* Suffix occurrences of [sub] across the indexed strings: an upper
     bound on [find_substring]'s cardinality (a string containing [sub]
     k times is counted k times; the lookup dedups).  O(|sub|) reads. *)
  let count_substring t sub = count_prefix t.trie sub
end
