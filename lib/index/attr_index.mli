(** Per-attribute secondary indexes over an instance: B+trees for int
    attributes, exact tries and suffix-trie substring indexes for string
    attributes, an exact trie over reverse keys for dn-valued attributes
    (Section 4.1's index assumption for atomic queries).

    Lookups return candidates in unspecified order; callers re-sort into
    the canonical order. *)

type t

val build : Pager.t -> Instance.t -> t

val lookup_int_range : t -> string -> lo:int -> hi:int -> Entry.t list option
(** Entries with an int value of the attribute in [lo, hi];
    [Some []] when the attribute has no int values anywhere. *)

val lookup_str_eq : t -> string -> string -> Entry.t list option
val lookup_str_prefix : t -> string -> string -> Entry.t list option
val lookup_substring : t -> string -> string -> Entry.t list option
val lookup_dn_eq : t -> string -> Value.dn -> Entry.t list option

(** {1 Cardinality probes}

    Candidate counts for the matching lookups, without materializing
    the postings: the descent is charged like a lookup's, the
    collection is not — O(log n) for the B-tree, O(|pattern|) for the
    tries.  These are what {!Plan} prices the index access path from.
    [0] when the attribute is not indexed anywhere. *)

val count_int_range : t -> string -> lo:int -> hi:int -> int
val count_str_eq : t -> string -> string -> int
val count_prefix : t -> string -> string -> int

val count_substring : t -> string -> string -> int
(** Upper bound: a value containing the pattern more than once counts
    once per occurrence ({!lookup_substring} dedups on collection). *)

val count_dn_eq : t -> string -> Value.dn -> int
