(** The clustering index on reverse-dn keys.

    The entries of an instance sorted by [Dn.rev_key] on pages: because
    an ancestor's key is a prefix of each descendant's, the three LDAP
    scopes are key-range operations, and atomic queries come out in the
    canonical order the whole pipeline needs (Section 8.2). *)

type t

val build : ?pool:Buffer_pool.t -> Pager.t -> Instance.t -> t
(** Lay the instance out as a sorted entry file (charges the one-time
    construction write).  With a [pool], scans read entry pages through
    the cache — hits are free. *)

val of_sorted_array : ?pool:Buffer_pool.t -> Pager.t -> Entry.t array -> t
val length : t -> int

val find : t -> Dn.t -> Entry.t option
(** Point lookup; charges a B-tree-like descent. *)

val subtree_range : t -> Dn.t -> int * int
(** Index range [lo, hi) of the subtree rooted at the base. *)

val scan_subtree : ?keep:(Entry.t -> bool) -> t -> Dn.t -> Entry.t Ext_list.t
(** The [sub] scope: descent + sequential read of the subtree range,
    filtered through [keep], output written through a standard writer. *)

val scan_children : ?keep:(Entry.t -> bool) -> t -> Dn.t -> Entry.t Ext_list.t
(** The [one] scope (base entry plus its children). *)

val scan_base : ?keep:(Entry.t -> bool) -> t -> Dn.t -> Entry.t Ext_list.t
(** The [base] scope. *)

val scan_subtree_src :
  ?keep:(Entry.t -> bool) -> t -> Dn.t -> Entry.t Ext_list.Source.src
(** Streaming [sub] scope: same descent and range-read charges, but the
    kept entries flow out as a live source instead of being written —
    the leaf of a pipelined plan (Section 8.2). *)

val scan_children_src :
  ?keep:(Entry.t -> bool) -> t -> Dn.t -> Entry.t Ext_list.Source.src

val scan_base_src :
  ?keep:(Entry.t -> bool) -> t -> Dn.t -> Entry.t Ext_list.Source.src
