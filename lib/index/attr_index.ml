(* Per-attribute secondary indexes over a directory instance.

   Integer attributes get a B+tree (equality and range filters), string
   attributes get an exact-match trie plus a suffix-trie substring index
   (wildcard filters), per Section 4.1's assumption that atomic queries
   are supported by "B-trees indices for integer and distinguishedName
   filters, and trie and suffix tree indices for string filters".
   Distinguished-name-valued attributes are indexed by their reverse key
   in the exact trie. *)

type t = {
  pager : Pager.t;
  ints : (string, Entry.t Btree.t) Hashtbl.t;
  str_exact : (string, Entry.t Str_trie.t) Hashtbl.t;
  str_sub : (string, Entry.t Str_trie.Substr.t) Hashtbl.t;
  dn_exact : (string, Entry.t Str_trie.t) Hashtbl.t;
}

let find_or_add tbl key create =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = create () in
      Hashtbl.replace tbl key v;
      v

let add_entry t e =
  List.iter
    (fun (a, v) ->
      match v with
      | Value.Int i ->
          Btree.insert (find_or_add t.ints a (fun () -> Btree.create t.pager)) i e
      | Value.Str s ->
          Str_trie.add (find_or_add t.str_exact a (fun () -> Str_trie.create t.pager)) s e;
          Str_trie.Substr.add
            (find_or_add t.str_sub a (fun () -> Str_trie.Substr.create t.pager))
            s e
      | Value.Dn d ->
          Str_trie.add
            (find_or_add t.dn_exact a (fun () -> Str_trie.create t.pager))
            (Dn.rev_key d) e)
    (Entry.attrs e)

let build pager instance =
  let t =
    {
      pager;
      ints = Hashtbl.create 32;
      str_exact = Hashtbl.create 32;
      str_sub = Hashtbl.create 32;
      dn_exact = Hashtbl.create 32;
    }
  in
  Instance.iter (add_entry t) instance;
  t

(* All lookups return candidate entries in unspecified order; callers
   re-sort into canonical order (charged as the output write). *)

let lookup_int_range t a ~lo ~hi =
  match Hashtbl.find_opt t.ints a with
  | None -> Some []  (* attribute never has int values *)
  | Some bt -> Some (List.concat_map snd (Btree.range bt ~lo ~hi))

let lookup_str_eq t a s =
  match Hashtbl.find_opt t.str_exact a with
  | None -> Some []
  | Some trie -> Some (Str_trie.find_exact trie s)

let lookup_str_prefix t a s =
  match Hashtbl.find_opt t.str_exact a with
  | None -> Some []
  | Some trie -> Some (Str_trie.find_prefix trie s)

let lookup_substring t a s =
  match Hashtbl.find_opt t.str_sub a with
  | None -> Some []
  | Some idx -> Some (Str_trie.Substr.find_substring idx s)

let lookup_dn_eq t a d =
  match Hashtbl.find_opt t.dn_exact a with
  | None -> Some []
  | Some trie -> Some (Str_trie.find_exact trie (Dn.rev_key d))

(* Cardinality probes: how many candidates the matching lookup would
   return, without materializing the postings.  Descent I/O is charged
   like a lookup's; the collection is not — O(log n) for the B-tree,
   O(|pattern|) for the tries — which is what lets a planner price the
   index path before committing to it. *)

let count_int_range t a ~lo ~hi =
  match Hashtbl.find_opt t.ints a with
  | None -> 0
  | Some bt -> Btree.count_range bt ~lo ~hi

let count_str_eq t a s =
  match Hashtbl.find_opt t.str_exact a with
  | None -> 0
  | Some trie -> Str_trie.count_exact trie s

let count_prefix t a s =
  match Hashtbl.find_opt t.str_exact a with
  | None -> 0
  | Some trie -> Str_trie.count_prefix trie s

(* Upper bound: suffix occurrences, not distinct strings. *)
let count_substring t a s =
  match Hashtbl.find_opt t.str_sub a with
  | None -> 0
  | Some idx -> Str_trie.Substr.count_substring idx s

let count_dn_eq t a d =
  match Hashtbl.find_opt t.dn_exact a with
  | None -> 0
  | Some trie -> Str_trie.count_exact trie (Dn.rev_key d)
