(* An in-memory B+tree over int keys with multiset postings, charged
   through the external-memory cost model: every node touched on a search
   or insertion path counts as one page read (plus one write for each node
   modified or created).

   The paper assumes atomic queries over integer attributes are answered
   "with the help of B-tree indices" (Section 4.1); this is that index.
   Keys map to posting lists (duplicate keys accumulate), leaves are
   linked for range scans. *)

type 'a leaf = {
  mutable lkeys : int array;
  mutable lvals : 'a list array;  (* posting list per key, newest first *)
  mutable lcount : int;
  mutable ltotal : int;  (* postings held by this leaf *)
  mutable next : 'a leaf option;
}

type 'a node = Leaf of 'a leaf | Internal of 'a internal

and 'a internal = {
  mutable ikeys : int array;  (* icount separator keys *)
  mutable children : 'a node array;  (* icount + 1 children *)
  mutable icount : int;
  mutable itotal : int;  (* postings held by the whole subtree *)
}

type 'a t = {
  pager : Pager.t;
  order : int;  (* max keys per node = 2 * order *)
  mutable root : 'a node;
  mutable cardinal : int;  (* total postings *)
}

let max_keys t = 2 * t.order

let fresh_leaf order =
  {
    (* one slack slot: a node may temporarily hold max_keys + 1 entries
       between the insert and the split that follows *)
    lkeys = Array.make ((2 * order) + 1) 0;
    lvals = Array.make ((2 * order) + 1) [];
    lcount = 0;
    ltotal = 0;
    next = None;
  }

let create ?(order = 16) pager =
  if order < 2 then invalid_arg "Btree.create: order < 2";
  { pager; order; root = Leaf (fresh_leaf order); cardinal = 0 }

let cardinal t = t.cardinal
let charge_read t = Io_stats.read_page (Pager.stats t.pager)
let charge_write t = Io_stats.write_page (Pager.stats t.pager)

(* Position of the first index in [keys.(0..count-1)] with keys.(i) >= k,
   or [count] if none. *)
let lower_bound keys count k =
  let lo = ref 0 and hi = ref count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index to follow for key [k]: first separator greater than [k]
   decides; equal keys go right so leaves own keys >= their separator. *)
let child_index ikeys icount k =
  let lo = ref 0 and hi = ref icount in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ikeys.(mid) <= k then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- Insertion -------------------------------------------------------- *)

let leaf_insert leaf k v =
  let pos = lower_bound leaf.lkeys leaf.lcount k in
  if pos < leaf.lcount && leaf.lkeys.(pos) = k then
    leaf.lvals.(pos) <- v :: leaf.lvals.(pos)
  else begin
    Array.blit leaf.lkeys pos leaf.lkeys (pos + 1) (leaf.lcount - pos);
    Array.blit leaf.lvals pos leaf.lvals (pos + 1) (leaf.lcount - pos);
    leaf.lkeys.(pos) <- k;
    leaf.lvals.(pos) <- [ v ];
    leaf.lcount <- leaf.lcount + 1
  end

let node_total = function Leaf l -> l.ltotal | Internal i -> i.itotal

let leaf_total leaf =
  let n = ref 0 in
  for i = 0 to leaf.lcount - 1 do
    n := !n + List.length leaf.lvals.(i)
  done;
  !n

let children_total node =
  let n = ref 0 in
  for i = 0 to node.icount do
    n := !n + node_total node.children.(i)
  done;
  !n

let split_leaf t leaf =
  let half = leaf.lcount / 2 in
  let right = fresh_leaf t.order in
  let moved = leaf.lcount - half in
  Array.blit leaf.lkeys half right.lkeys 0 moved;
  Array.blit leaf.lvals half right.lvals 0 moved;
  (* Clear moved slots so posting lists do not leak into the left node. *)
  Array.fill leaf.lvals half moved [];
  right.lcount <- moved;
  leaf.lcount <- half;
  leaf.ltotal <- leaf_total leaf;
  right.ltotal <- leaf_total right;
  right.next <- leaf.next;
  leaf.next <- Some right;
  charge_write t;
  (right.lkeys.(0), Leaf right)

let split_internal t node =
  let half = node.icount / 2 in
  let sep = node.ikeys.(half) in
  let moved = node.icount - half - 1 in
  let right =
    {
      ikeys = Array.make ((2 * t.order) + 1) 0;
      children = Array.make ((2 * t.order) + 2) node.children.(0);
      icount = moved;
      itotal = 0;
    }
  in
  Array.blit node.ikeys (half + 1) right.ikeys 0 moved;
  Array.blit node.children (half + 1) right.children 0 (moved + 1);
  node.icount <- half;
  node.itotal <- children_total node;
  right.itotal <- children_total right;
  charge_write t;
  (sep, Internal right)

(* Insert into subtree; returns the split (separator, new right sibling)
   when the node overflowed. *)
let rec insert_node t node k v =
  charge_read t;
  match node with
  | Leaf leaf ->
      leaf_insert leaf k v;
      leaf.ltotal <- leaf.ltotal + 1;
      charge_write t;
      if leaf.lcount > max_keys t then Some (split_leaf t leaf) else None
  | Internal inode -> (
      inode.itotal <- inode.itotal + 1;
      let ci = child_index inode.ikeys inode.icount k in
      match insert_node t inode.children.(ci) k v with
      | None -> None
      | Some (sep, right) ->
          Array.blit inode.ikeys ci inode.ikeys (ci + 1) (inode.icount - ci);
          Array.blit inode.children (ci + 1) inode.children (ci + 2)
            (inode.icount - ci);
          inode.ikeys.(ci) <- sep;
          inode.children.(ci + 1) <- right;
          inode.icount <- inode.icount + 1;
          charge_write t;
          if inode.icount > max_keys t then Some (split_internal t inode)
          else None)

let insert t k v =
  t.cardinal <- t.cardinal + 1;
  match insert_node t t.root k v with
  | None -> ()
  | Some (sep, right) ->
      let ikeys = Array.make ((2 * t.order) + 1) 0 in
      let children = Array.make ((2 * t.order) + 2) t.root in
      ikeys.(0) <- sep;
      children.(0) <- t.root;
      children.(1) <- right;
      t.root <-
        Internal
          {
            ikeys;
            children;
            icount = 1;
            itotal = node_total t.root + node_total right;
          };
      charge_write t

(* --- Lookup ----------------------------------------------------------- *)

let rec find_leaf t node k =
  charge_read t;
  match node with
  | Leaf leaf -> leaf
  | Internal inode ->
      find_leaf t inode.children.(child_index inode.ikeys inode.icount k) k

let find t k =
  let leaf = find_leaf t t.root k in
  let pos = lower_bound leaf.lkeys leaf.lcount k in
  if pos < leaf.lcount && leaf.lkeys.(pos) = k then List.rev leaf.lvals.(pos)
  else []

(* Inclusive range scan [lo, hi]; results in key order, each key's
   postings in insertion order.  Walks the linked leaves, one read per
   leaf page. *)
let range t ~lo ~hi =
  if lo > hi then []
  else begin
    let leaf = find_leaf t t.root lo in
    let acc = ref [] in
    let rec walk leaf =
      let start = lower_bound leaf.lkeys leaf.lcount lo in
      let stop = ref start in
      while !stop < leaf.lcount && leaf.lkeys.(!stop) <= hi do
        acc := (leaf.lkeys.(!stop), List.rev leaf.lvals.(!stop)) :: !acc;
        incr stop
      done;
      if !stop = leaf.lcount then
        match leaf.next with
        | Some nxt when nxt.lcount > 0 && nxt.lkeys.(0) <= hi ->
            charge_read t;
            walk nxt
        | Some _ | None -> ()
    in
    walk leaf;
    List.rev !acc
  end

(* Postings with key <= k, from the maintained subtree totals: one
   root-to-leaf descent, each visited node charged as a read, children
   left of the descent path contributing their totals wholesale. *)
let count_le t k =
  let rec go node =
    charge_read t;
    match node with
    | Leaf leaf ->
        let n = ref 0 in
        let i = ref 0 in
        while !i < leaf.lcount && leaf.lkeys.(!i) <= k do
          n := !n + List.length leaf.lvals.(!i);
          incr i
        done;
        !n
    | Internal inode ->
        let ci = child_index inode.ikeys inode.icount k in
        let n = ref 0 in
        for i = 0 to ci - 1 do
          n := !n + node_total inode.children.(i)
        done;
        !n + go inode.children.(ci)
  in
  go t.root

(* Cardinality of [range ~lo ~hi] without materializing the postings:
   O(log n) page reads (two boundary descents; none for the full-key
   range, which is the maintained cardinal). *)
let count_range t ~lo ~hi =
  if lo > hi then 0
  else if lo = min_int && hi = max_int then t.cardinal
  else if lo = min_int then count_le t hi
  else count_le t hi - count_le t (lo - 1)

let fold_all f init t =
  (* Descend to the leftmost leaf, then follow the chain. *)
  let rec leftmost = function
    | Leaf l -> l
    | Internal i -> leftmost i.children.(0)
  in
  let rec walk acc leaf =
    let acc = ref acc in
    for i = 0 to leaf.lcount - 1 do
      acc := f !acc leaf.lkeys.(i) (List.rev leaf.lvals.(i))
    done;
    match leaf.next with Some nxt -> walk !acc nxt | None -> !acc
  in
  walk init (leftmost t.root)

(* Structural invariants, exercised by the property tests. *)
let rec check_node node ~lo ~hi ~depth =
  match node with
  | Leaf leaf ->
      for i = 0 to leaf.lcount - 2 do
        assert (leaf.lkeys.(i) < leaf.lkeys.(i + 1))
      done;
      for i = 0 to leaf.lcount - 1 do
        (match lo with Some l -> assert (leaf.lkeys.(i) >= l) | None -> ());
        (match hi with Some h -> assert (leaf.lkeys.(i) < h) | None -> ())
      done;
      assert (leaf.ltotal = leaf_total leaf);
      depth
  | Internal inode ->
      assert (inode.icount >= 1);
      assert (inode.itotal = children_total inode);
      for i = 0 to inode.icount - 2 do
        assert (inode.ikeys.(i) < inode.ikeys.(i + 1))
      done;
      let depths =
        List.init (inode.icount + 1) (fun i ->
            let lo' = if i = 0 then lo else Some inode.ikeys.(i - 1) in
            let hi' = if i = inode.icount then hi else Some inode.ikeys.(i) in
            check_node inode.children.(i) ~lo:lo' ~hi:hi' ~depth:(depth + 1))
      in
      (match depths with
      | d :: rest -> List.iter (fun d' -> assert (d = d')) rest
      | [] -> ());
      List.hd depths

let check_invariants t = ignore (check_node t.root ~lo:None ~hi:None ~depth:0)
