(** An in-memory B+tree over int keys with multiset postings, charged
    through the external-memory cost model (one page read per node
    visited, one write per node modified).

    The index Section 4.1 assumes for integer atomic filters.  Keys map
    to posting lists (duplicate keys accumulate in insertion order);
    leaves are linked for range scans. *)

type 'a t

val create : ?order:int -> Pager.t -> 'a t
(** A fresh tree holding at most [2 * order] keys per node (default
    order 16).  @raise Invalid_argument if [order < 2]. *)

val cardinal : 'a t -> int
(** Total postings inserted. *)

val insert : 'a t -> int -> 'a -> unit

val find : 'a t -> int -> 'a list
(** Postings of one key, in insertion order ([[]] if absent). *)

val range : 'a t -> lo:int -> hi:int -> (int * 'a list) list
(** Inclusive range scan in key order, walking the leaf chain. *)

val count_range : 'a t -> lo:int -> hi:int -> int
(** Cardinality of [range ~lo ~hi] without materializing the postings:
    maintained subtree totals make it O(log n) page reads (at most two
    boundary descents; zero for the unbounded range). *)

val fold_all : ('acc -> int -> 'a list -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over all keys in order (unaccounted; used by tests). *)

val check_invariants : 'a t -> unit
(** Assert key ordering, separator bounds and uniform depth. *)
