(* The clustering index on reverse-dn keys.

   The entries of an instance, sorted by [Dn.rev_key], laid out on pages.
   Because an ancestor's key is a prefix of each descendant's key, the
   three LDAP search scopes become key-range operations:

   - [base]: binary search (charged like a B-tree descent);
   - [sub]:  the contiguous range of keys with prefix [rev_key base];
   - [one]:  the same range, filtered to depth(base) + 1.

   Atomic queries produce their result in canonical sorted order directly
   from this index — the property Section 8.2's pipelined evaluation
   depends on. *)

type t = {
  pager : Pager.t;
  entries : Entry.t array;
  pool : Buffer_pool.t option;  (* optional page cache: hits are free *)
}

let build ?pool pager instance =
  let entries = Array.of_list (Instance.to_list instance) in
  (* Construction writes the sorted entry file once. *)
  Pager.charge_scan_write pager (Array.length entries);
  { pager; entries; pool }

let of_sorted_array ?pool pager entries = { pager; entries; pool }
let length t = Array.length t.entries

(* Read one page of the entry file, through the cache when present. *)
let read_page t page =
  match t.pool with
  | Some pool -> Buffer_pool.read pool ~file:"dn_index" ~page
  | None -> Io_stats.read_page (Pager.stats t.pager)

(* First index whose key is >= [key]. *)
let lower_bound t key =
  let lo = ref 0 and hi = ref (Array.length t.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (Entry.key t.entries.(mid)) key < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* Charge a B-tree-like descent: ceil(log2 (pages)) + 1 page reads; the
   touched internal nodes are cacheable (keyed per level over the page
   range they cover). *)
let charge_descent t =
  let pages = max 1 (Pager.pages_of t.pager (Array.length t.entries)) in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  let depth = log2 pages + 1 in
  match t.pool with
  | None -> Io_stats.read_page ~n:depth (Pager.stats t.pager)
  | Some pool ->
      for level = 0 to depth - 1 do
        Buffer_pool.read pool ~file:"dn_index.inner" ~page:level
      done

let find t dn =
  charge_descent t;
  let key = Dn.rev_key dn in
  let i = lower_bound t key in
  if i < Array.length t.entries && String.equal (Entry.key t.entries.(i)) key
  then Some t.entries.(i)
  else None

(* Index range [lo, hi) of the subtree rooted at [base]. *)
let subtree_range t base =
  let prefix = Dn.rev_key base in
  let lo = lower_bound t prefix in
  let hi = ref lo in
  while
    !hi < Array.length t.entries
    && Entry.key_is_prefix ~prefix (Entry.key t.entries.(!hi))
  do
    incr hi
  done;
  (lo, !hi)

(* Scan a subtree as a stream: charges the descent plus a sequential
   read of the touched range; the kept entries flow out as a live
   source, ready to pipeline into an operator without ever being
   written. *)
let scan_subtree_src ?(keep = fun _ -> true) t base =
  charge_descent t;
  let lo, hi = subtree_range t base in
  if hi > lo then begin
    let block = Pager.block t.pager in
    for page = lo / block to (hi - 1) / block do
      read_page t page
    done
  end;
  let out = ref [] in
  for i = lo to hi - 1 do
    if keep t.entries.(i) then out := t.entries.(i) :: !out
  done;
  Ext_list.Source.of_array (Array.of_list (List.rev !out))

let scan_children_src ?(keep = fun _ -> true) t base =
  let d = Dn.depth base + 1 in
  scan_subtree_src t base ~keep:(fun e ->
      let depth = Dn.depth (Entry.dn e) in
      (depth = d || depth = Dn.depth base) && keep e)

let scan_base_src ?(keep = fun _ -> true) t base =
  charge_descent t;
  let key = Dn.rev_key base in
  let i = lower_bound t key in
  let out =
    if i < Array.length t.entries then
      let e = t.entries.(i) in
      if String.equal (Entry.key e) key && keep e then [| e |] else [||]
    else [||]
  in
  Ext_list.Source.of_array out

(* Materialized scans: the same ranges, with the output written through
   a page-buffered writer. *)
let scan_subtree ?keep t base =
  Ext_list.Source.materialize t.pager (scan_subtree_src ?keep t base)

let scan_children ?keep t base =
  Ext_list.Source.materialize t.pager (scan_children_src ?keep t base)

let scan_base ?keep t base =
  Ext_list.Source.materialize t.pager (scan_base_src ?keep t base)
