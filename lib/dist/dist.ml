(* Distributed query evaluation (Sections 3.3 and 8.3).

   The hierarchical namespace is split into domains, DNS-style: a domain
   is registered at a dn, owns the subtree rooted there minus any
   delegated subdomains, and is served by one directory server.  A
   query is evaluated by the server it is posed to (the coordinator):

   - each atomic sub-query is routed to the server owning its base dn
     (longest-suffix domain match, as in DNS resolution);
   - remote servers evaluate their atomic queries locally and ship the
     sorted result lists back;
   - the coordinator then runs the ordinary operator algorithms over the
     shipped lists (Section 8.3's bottom-up strategy).

   Everything runs in-process; shipping is accounted in messages and
   bytes on the coordinator's [Io_stats]. *)

type server = {
  name : string;
  domain : Dn.t;  (* the root of the namespace this server owns *)
  instance : Instance.t;  (* only the entries the server owns *)
  engine : Engine.t;
}

type network = {
  servers : server list;  (* the registry, most specific domains first *)
  block : int;
}

(* --- Partitioning ------------------------------------------------------- *)

(* DNS-style ownership: an entry belongs to the most specific registered
   domain that is an ancestor-or-self of its dn. *)
let owner_domain domains dn =
  let covers d = Dn.is_self_or_descendant_of ~descendant:dn ~ancestor:d in
  let best =
    List.fold_left
      (fun best d ->
        if covers d then
          match best with
          | Some b when Dn.depth b >= Dn.depth d -> best
          | _ -> Some d
        else best)
      None domains
  in
  best

(* Split [instance] into one server per domain.  Entries not covered by
   any domain go to the first (root-most) server, which models the
   queried server also acting as the default owner. *)
let deploy ?(block = 64) instance domains =
  (match domains with [] -> invalid_arg "Dist.deploy: no domains" | _ -> ());
  let sorted_domains =
    List.sort (fun a b -> Int.compare (Dn.depth b) (Dn.depth a)) domains
  in
  let buckets = Hashtbl.create 8 in
  List.iter (fun d -> Hashtbl.replace buckets (Dn.rev_key d) []) sorted_domains;
  let fallback =
    match List.rev sorted_domains with d :: _ -> d | [] -> assert false
  in
  Instance.iter
    (fun e ->
      let d =
        match owner_domain sorted_domains (Entry.dn e) with
        | Some d -> d
        | None -> fallback
      in
      let key = Dn.rev_key d in
      Hashtbl.replace buckets key (e :: Option.value ~default:[] (Hashtbl.find_opt buckets key)))
    instance;
  let servers =
    List.mapi
      (fun i d ->
        let entries = List.rev (Option.value ~default:[] (Hashtbl.find_opt buckets (Dn.rev_key d))) in
        let sub = Instance.of_entries ~validate:false (Instance.schema instance) entries in
        {
          name = Printf.sprintf "server%d@%s" i (if Dn.equal d Dn.root then "<root>" else Dn.to_string d);
          domain = d;
          instance = sub;
          engine = Engine.create ~block sub;
        })
      sorted_domains
  in
  { servers; block }

let find_server network dn =
  let d =
    match owner_domain (List.map (fun s -> s.domain) network.servers) dn with
    | Some d -> d
    | None -> (match List.rev network.servers with s :: _ -> s.domain | [] -> assert false)
  in
  List.find (fun s -> Dn.equal s.domain d) network.servers

(* --- The coordinator ----------------------------------------------------- *)

type coordinator = {
  network : network;
  home : server;  (* the server the query was posed to *)
  stats : Io_stats.t;  (* coordinator-side cost, incl. shipping *)
  pager : Pager.t;
  result_cache : Cache.t option;  (* shipped sub-query results, per server *)
}

let coordinator ?result_cache network home_dn =
  let home = find_server network home_dn in
  let stats = Io_stats.create () in
  {
    network;
    home;
    stats;
    pager = Pager.create ~block:network.block stats;
    result_cache;
  }

let note_update ?subtree t dn =
  match t.result_cache with
  | Some c -> Cache.note_update ?subtree c dn
  | None -> ()

(* An atomic query generally spans several domains: the owner of the base
   dn plus every server whose domain lies inside the base's subtree.
   Each involved server answers from its own partition; the coordinator
   merges the sorted partial results (domains are disjoint subtrees, so
   partial results interleave but merging keeps the canonical order). *)
let involved_servers t (a : Ast.atomic) =
  let owner = find_server t.network a.Ast.base in
  let inside =
    List.filter
      (fun s ->
        (not (Dn.equal s.domain owner.domain))
        && Dn.is_self_or_descendant_of ~descendant:s.domain ~ancestor:a.Ast.base)
      t.network.servers
  in
  owner :: inside

let query_bytes q = String.length (Qprinter.to_string (Ast.Atomic q))

(* Cross-server traffic also feeds the process-wide metrics registry,
   labeled by the answering server, so the shipping profile survives
   across queries and coordinators. *)
let m_messages server =
  Metrics.counter ~help:"messages shipped between directory servers"
    ~labels:[ ("server", server) ]
    "dist_messages_total"

let m_bytes server =
  Metrics.counter ~help:"payload bytes shipped between directory servers"
    ~labels:[ ("server", server) ]
    "dist_bytes_shipped_total"

let ship t server ~bytes =
  Io_stats.message ~bytes t.stats;
  Metrics.incr (m_messages server.name);
  Metrics.add (m_bytes server.name) bytes

(* Traffic the result cache saved: counted per answering server, like
   the shipping counters it offsets. *)
let m_saved_messages server =
  Metrics.counter ~help:"messages saved by the coordinator result cache"
    ~labels:[ ("server", server) ]
    "dist_cache_saved_messages_total"

let m_saved_bytes server =
  Metrics.counter ~help:"shipped bytes saved by the coordinator result cache"
    ~labels:[ ("server", server) ]
    "dist_cache_saved_bytes_total"

let entries_bytes = Array.fold_left (fun n e -> n + Entry.byte_size e) 0

(* Evaluate one atomic query on every involved server.  Each shipped
   result is materialized at the coordinator (streaming never crosses
   the wire: a shard arrives whole before the pipeline can consume it). *)
let eval_shards t (a : Ast.atomic) =
    List.map
      (fun s ->
        (* One child span per involved server, remote or not; journal
           events recorded by the server's engine (the remote side of
           the shipped sub-query) are attributed to that server. *)
        Trace.with_span ~detail:s.name ~stats:t.stats "ship" (fun () ->
            Qlog.with_server s.name (fun () ->
                let local = Dn.equal s.domain t.home.domain in
                (* Remote shards can be answered from the coordinator's
                   result cache, skipping the round trip entirely; the
                   key scopes the sub-query's text to the server. *)
                let probe =
                  if local then None
                  else
                    match t.result_cache with
                    | None -> None
                    | Some c ->
                        let fingerprint = Plan.fingerprint (Ast.Atomic a) in
                        let ckey =
                          Qprinter.to_string (Ast.Atomic a) ^ " @" ^ s.name
                        in
                        Some (c, fingerprint, ckey,
                              Cache.find c ~fingerprint ~query:ckey)
                in
                match probe with
                | Some (_, _, _, Cache.Hit arr) ->
                    Metrics.add (m_saved_messages s.name) 2;
                    Metrics.add (m_saved_bytes s.name)
                      (query_bytes a + entries_bytes arr);
                    Ext_list.materialize t.pager arr
                | _ ->
                    (* Ship the atomic query out and the result back.
                       The server's engine spans carry its name as
                       actor, so a stitched trace shows each shard's
                       work in its own lane. *)
                    if not local then ship t s ~bytes:(query_bytes a);
                    let result =
                      Trace.with_actor s.name (fun () ->
                          Engine.eval s.engine (Ast.Atomic a))
                    in
                    let arr = Array.of_list (Ext_list.to_list result) in
                    if not local then ship t s ~bytes:(entries_bytes arr);
                    (match probe with
                    | Some (c, fingerprint, ckey, (Cache.Miss | Cache.Stale))
                      ->
                        (* Cost is counted in messages: a hit saves the
                           two of a round trip. *)
                        ignore
                          (Cache.store c ~fingerprint ~query:ckey
                             ~footprint:(Footprint.of_query (Ast.Atomic a))
                             ~cost_io:2
                             ~pages:(Pager.pages_of t.pager (Array.length arr))
                             arr)
                    | _ -> ());
                    (* Materialize the shipped list at the coordinator. *)
                    Ext_list.materialize t.pager arr)))
      (involved_servers t a)

let eval_atomic t (a : Ast.atomic) =
  let shards = eval_shards t a in
  (* Merge the sorted shards (pairwise unions). *)
  Trace.with_span ~stats:t.stats "combine" (fun () ->
      match shards with
      | [] -> Ext_list.materialize t.pager [||]
      | first :: rest -> List.fold_left Bool_ops.or_ first rest)

(* Streaming variant: the shipped shards are still materialized, but the
   merge pipelines them into the operator tree without writing the
   merged list. *)
let eval_atomic_src t (a : Ast.atomic) =
  let shards = eval_shards t a in
  Trace.with_span ~stats:t.stats "combine" (fun () ->
      match shards with
      | [] -> Ext_list.Source.of_array [||]
      | first :: rest ->
          List.fold_left
            (fun acc l ->
              Bool_ops.or_src t.pager acc (Ext_list.Source.of_list l))
            (Ext_list.Source.of_list first)
            rest)

(* Bottom-up evaluation with remote atomic queries and local operators. *)
let rec eval_tree t (q : Ast.t) =
  match q with
  | Ast.Atomic a -> eval_atomic t a
  | Ast.And (q1, q2) -> Bool_ops.and_ (eval_tree t q1) (eval_tree t q2)
  | Ast.Or (q1, q2) -> Bool_ops.or_ (eval_tree t q1) (eval_tree t q2)
  | Ast.Diff (q1, q2) -> Bool_ops.diff (eval_tree t q1) (eval_tree t q2)
  | Ast.Hier (op, q1, q2, agg) ->
      Hs_agg.compute_hier ?agg op (eval_tree t q1) (eval_tree t q2)
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      Hs_agg.compute_hier3 ?agg op (eval_tree t q1) (eval_tree t q2)
        (eval_tree t q3)
  | Ast.Gsel (q1, f) -> Simple_agg.compute f (eval_tree t q1)
  | Ast.Eref (op, q1, q2, attr, agg) ->
      Er.compute ?agg op (eval_tree t q1) (eval_tree t q2) attr

(* The fused coordinator pipeline: shipped shards stay materialized,
   every operator boundary above them streams. *)
let rec eval_tree_src t (q : Ast.t) =
  match q with
  | Ast.Atomic a -> eval_atomic_src t a
  | Ast.And (q1, q2) ->
      let s1 = eval_tree_src t q1 in
      let s2 = eval_tree_src t q2 in
      Bool_ops.and_src t.pager s1 s2
  | Ast.Or (q1, q2) ->
      let s1 = eval_tree_src t q1 in
      let s2 = eval_tree_src t q2 in
      Bool_ops.or_src t.pager s1 s2
  | Ast.Diff (q1, q2) ->
      let s1 = eval_tree_src t q1 in
      let s2 = eval_tree_src t q2 in
      Bool_ops.diff_src t.pager s1 s2
  | Ast.Hier (op, q1, q2, agg) ->
      let s1 = eval_tree_src t q1 in
      let s2 = eval_tree_src t q2 in
      Hs_agg.compute_hier_src ?agg t.pager op s1 s2
  | Ast.Hier3 (op, q1, q2, q3, agg) ->
      let s1 = eval_tree_src t q1 in
      let s2 = eval_tree_src t q2 in
      let s3 = eval_tree_src t q3 in
      Hs_agg.compute_hier3_src ?agg t.pager op s1 s2 s3
  | Ast.Gsel (q1, f) -> Simple_agg.compute_src t.pager f (eval_tree_src t q1)
  | Ast.Eref (op, q1, q2, attr, agg) ->
      let s1 = eval_tree_src t q1 in
      let s2 = eval_tree_src t q2 in
      Er.compute_src ?agg t.pager op s1 s2 attr

(* --- The coordinator's own journal entry --------------------------------- *)

let m_dist_queries =
  Metrics.counter ~help:"coordinator query trees evaluated" "dist_queries_total"

let m_dist_latency =
  Metrics.histogram ~help:"wall-clock nanoseconds per coordinator query"
    "dist_query_ns"

(* Per-server cumulative shipping counters, snapshotted around a query
   so the coordinator's journal event attributes traffic per server. *)
let shipping_snapshot t =
  List.map
    (fun s ->
      ( s.name,
        Metrics.counter_value (m_messages s.name),
        Metrics.counter_value (m_bytes s.name) ))
    t.network.servers

let shipping_delta before after =
  List.filter_map
    (fun (name, msgs1, bytes1) ->
      match List.assoc_opt name (List.map (fun (n, m, b) -> (n, (m, b))) before) with
      | Some (msgs0, bytes0) when msgs1 > msgs0 || bytes1 > bytes0 ->
          Some (name, msgs1 - msgs0, bytes1 - bytes0)
      | Some _ -> None
      | None -> Some (name, msgs1, bytes1))
    after

let query_detail q =
  let s = Qprinter.to_string q in
  if String.length s > 60 then String.sub s 0 59 ^ "…" else s

(* Summarize the per-shard cache outcomes of one query tree from the
   cache's counter deltas: all lookups hit -> "hit", any invalidated ->
   "stale", otherwise "miss" (including trees with no remote shard). *)
let cache_probe_snapshot t =
  match t.result_cache with
  | None -> None
  | Some c ->
      let s = Cache.stats c in
      Some (s.Cache.hits, s.Cache.misses, s.Cache.stale)

let cache_note t before =
  match (t.result_cache, before) with
  | None, _ | _, None -> "bypass"
  | Some c, Some (h0, m0, s0) ->
      let s = Cache.stats c in
      let hits = s.Cache.hits - h0
      and misses = s.Cache.misses - m0
      and stale = s.Cache.stale - s0 in
      if stale > 0 then "stale"
      else if misses > 0 || hits = 0 then "miss"
      else "hit"

(* Attach the plan's atomic-leaf cardinality estimates to the
   coordinator's "combine" rows.  The span tree under "coordinate"
   holds one depth-1 combine per atomic sub-query, in evaluation order
   (left to right), which is exactly the preorder order of the plan's
   atomic leaves; counts must agree or the rows stay unannotated.
   Reads/writes are left out: a combine merges already-shipped lists,
   which the per-node cost model doesn't price.  The estimates come
   from the home partition (the coordinator never sees the global
   instance), so their q-error also measures partition-blindness. *)
let annotate_combines plan (ops : Qlog.op list) =
  let leaves =
    List.filter_map
      (fun ((n : Plan.node), _) ->
        if String.equal n.Plan.label "atomic" then Some n else None)
      (Plan.flatten plan)
  in
  let is_combine (o : Qlog.op) =
    o.Qlog.op_depth = 1 && String.equal o.Qlog.op_name "combine"
  in
  let combines = List.length (List.filter is_combine ops) in
  if combines <> List.length leaves then ops
  else begin
    let remaining = ref leaves in
    List.map
      (fun (o : Qlog.op) ->
        if is_combine o then
          match !remaining with
          | n :: tl ->
              remaining := tl;
              { o with Qlog.op_est_rows = Some n.Plan.est_rows }
          | [] -> o
        else o)
      ops
  end

let journal_event t q ~mode ~cache ~result_count ~reads ~writes ~wall_ns
    ~alloc_bytes ~outcome ~shipped span =
  (* Estimated over the home partition — the coordinator never
     materializes the global instance.  Under a cost-based home engine
     the estimate prices access paths with the engine's own pager and
     index (probe refunds must land on the counter the probes charge)
     — the two pagers share the network's blocking factor, so the page
     math is the same. *)
  let home = t.home.engine in
  let with_paths = Engine.planner home <> Engine.Off in
  let plan =
    if with_paths then
      let force =
        match Engine.planner home with
        | Engine.Force_index -> Some Plan.Index
        | Engine.Force_scan -> Some Plan.Scan
        | Engine.Auto | Engine.Off -> None
      in
      Plan.estimate ~pager:(Engine.pager home) ~instance:t.home.instance
        ?attr_index:(Engine.attr_index home)
        ?calib:(Engine.calibration home)
        ~streaming:(mode = Engine.Streaming) ?force q
    else Plan.estimate ~pager:t.pager ~instance:t.home.instance q
  in
  let path =
    if not with_paths then None
    else
      Plan.flatten plan
      |> List.filter_map (fun ((n : Plan.node), _) ->
             Option.map
               (fun (c : Plan.choice) ->
                 Plan.path_name c.Plan.chosen.Plan.alt_path)
               n.Plan.access)
      |> List.sort_uniq String.compare
      |> function [] -> None | ps -> Some (String.concat "," ps)
  in
  let ops =
    match span with
    | Some sp -> annotate_combines plan (Qlog.ops_of_span sp)
    | None -> []
  in
  let capture =
    if wall_ns >= Qlog.threshold_ns () then
      Some
        {
          Qlog.span_text =
            (match span with
            | Some sp -> Fmt.str "%a" Trace.pp_span sp
            | None -> "");
          plan_text = Plan.to_string plan;
        }
    else None
  in
  let trace_id =
    match span with
    | Some sp -> Some sp.Trace.trace_id
    | None -> Trace.current_trace_id ()
  in
  let est_writes =
    match mode with
    | Engine.Streaming ->
        max 0 (Plan.total_est_writes plan - Plan.total_est_writes_saved plan)
    | Engine.Materialized -> Plan.total_est_writes plan
  in
  ignore
    (Qlog.record ~cache ?path ~server:t.home.name ?trace_id ~shipped ~ops
       ?capture
       ~query:(Qprinter.to_string q)
       ~fingerprint:(Plan.fingerprint q) ~result_count ~reads ~writes ~wall_ns
       ~alloc_bytes ~outcome ~est_card:plan.Plan.est_rows
       ~est_reads:(Plan.total_est_reads plan) ~est_writes ())

let eval ?(mode = Engine.Streaming) t q =
  let reads0 = t.stats.Io_stats.page_reads
  and writes0 = t.stats.Io_stats.page_writes in
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Mclock.now_ns () in
  let journal = Qlog.enabled () in
  Engine.with_forced_tracing journal (fun () ->
      (* Trace-context propagation: one fresh trace id per coordinated
         query, bound for its whole extent, so the coordinator's merge
         spans and every involved server's engine spans (and their
         journal events) stitch into one causal tree.  The coordinator
         itself is the root actor; eval_atomic rebinds per server. *)
      let stitch f =
        if Trace.enabled () then
          Trace.with_trace_id (Trace.next_trace_id ()) (fun () ->
              Trace.with_actor "coordinator" f)
        else f ()
      in
      stitch @@ fun () ->
      let ship0 = if journal then shipping_snapshot t else [] in
      let probe0 = cache_probe_snapshot t in
      let detail = if Trace.enabled () then query_detail q else "" in
      match
        Trace.with_span_out ~detail ~stats:t.stats "coordinate" (fun () ->
            let out =
              match mode with
              | Engine.Streaming ->
                  Ext_list.Source.materialize t.pager (eval_tree_src t q)
              | Engine.Materialized -> eval_tree t q
            in
            Trace.set_rows (Ext_list.length out);
            out)
      with
      | exception e ->
          if journal then
            journal_event t q ~mode ~cache:(cache_note t probe0) ~result_count:0
              ~reads:(t.stats.Io_stats.page_reads - reads0)
              ~writes:(t.stats.Io_stats.page_writes - writes0)
              ~wall_ns:(Mclock.now_ns () - t0)
              ~alloc_bytes:(int_of_float (Gc.allocated_bytes () -. alloc0))
              ~outcome:(Qlog.Failed (Printexc.to_string e))
              ~shipped:[] None;
          raise e
      | out, span ->
          let wall_ns = Mclock.now_ns () - t0 in
          Metrics.incr m_dist_queries;
          Metrics.observe_ns m_dist_latency wall_ns;
          if journal then
            journal_event t q ~mode ~cache:(cache_note t probe0)
              ~result_count:(Ext_list.length out)
              ~reads:(t.stats.Io_stats.page_reads - reads0)
              ~writes:(t.stats.Io_stats.page_writes - writes0)
              ~wall_ns
              ~alloc_bytes:(int_of_float (Gc.allocated_bytes () -. alloc0))
              ~outcome:Qlog.Ok
              ~shipped:(shipping_delta ship0 (shipping_snapshot t))
              span;
          out)

let eval_entries ?mode t q = Ext_list.to_list (eval ?mode t q)

(* Aggregate server-side I/O across the network, for the experiments. *)
let server_stats network =
  List.map (fun s -> (s.name, Engine.stats s.engine)) network.servers

let reset_all t =
  Io_stats.reset t.stats;
  List.iter (fun s -> Engine.reset_stats s.engine) t.network.servers
