(** Primary/secondary replication of domain partitions (Section 3.3,
    footnote 4: secondaries keep the service available).

    Each domain is a replica group: one primary takes updates, the
    secondaries replay its log asynchronously ({!replicate}); routing
    uses the same longest-suffix domain match as queries, replication
    traffic is charged in messages/bytes, and failover promotes the
    most-caught-up secondary at the cost of losing any unreplicated
    suffix — exactly the asynchronous-replication trade-off. *)

type update =
  | Add of Entry.t
  | Delete of Dn.t
  | Delete_subtree of Dn.t
  | Modify of Dn.t * Directory.modification list

val update_dn : update -> Dn.t

type replica = {
  replica_name : string;
  directory : Directory.t;
  mutable applied : int;  (** log prefix replayed here *)
}

type group = {
  domain : Dn.t;
  mutable primary : replica;
  mutable secondaries : replica list;
  mutable log : update list;  (** newest first *)
  mutable log_length : int;
}

type t = { groups : group list; stats : Io_stats.t; block : int }

val deploy : ?block:int -> ?secondaries:int -> Instance.t -> Dn.t list -> t
(** Partition over the domains (as {!Dist.deploy}) with [secondaries]
    replicas per group (default 1). *)

val group_of : t -> Dn.t -> group

val update : t -> update -> (unit, Directory.error) result
(** Route to the owning primary, apply, append to the log. *)

val lag : group -> replica -> int

val replicate : t -> unit
(** Push every pending log entry to every secondary (one message per
    update per secondary). *)

val max_lag : t -> int

exception No_secondary of Dn.t

val fail_primary : t -> Dn.t -> int
(** Promote the most-caught-up secondary; returns the number of updates
    lost (the unreplicated log suffix).
    @raise No_secondary when no secondary remains. *)

type read_preference = Primary | Any_secondary

val replica_for : ?prefer:read_preference -> t -> Dn.t -> replica

val engine : ?prefer:read_preference -> t -> Dn.t -> Engine.t
(** A query engine over one replica's current state. *)

val consistent : t -> bool
(** Do all replicas agree (true after a full {!replicate})? *)

val pp_status : Format.formatter -> t -> unit
