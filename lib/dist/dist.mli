(** Distributed query evaluation (Sections 3.3 and 8.3).

    The namespace is split DNS-style into domains, each owning the
    subtree at its dn minus delegated subdomains, each served by one
    in-process server.  A coordinator routes each atomic sub-query to
    the servers owning parts of its base's subtree, ships the sorted
    partial results back (accounted in messages/bytes), merges them,
    and runs the ordinary operator algorithms locally. *)

type server = {
  name : string;
  domain : Dn.t;
  instance : Instance.t;  (** only the entries this server owns *)
  engine : Engine.t;
}

type network = { servers : server list; block : int }

val owner_domain : Dn.t list -> Dn.t -> Dn.t option
(** The most specific registered domain covering a dn. *)

val deploy : ?block:int -> Instance.t -> Dn.t list -> network
(** Partition an instance over the given domains (most specific domain
    owns each entry; uncovered entries go to the root-most domain).
    @raise Invalid_argument on an empty domain list. *)

val find_server : network -> Dn.t -> server

type coordinator = {
  network : network;
  home : server;  (** the server the query was posed to *)
  stats : Io_stats.t;  (** coordinator-side cost including shipping *)
  pager : Pager.t;
  result_cache : Cache.t option;
      (** shipped sub-query results, keyed per answering server *)
}

val coordinator : ?result_cache:Cache.t -> network -> Dn.t -> coordinator
(** A coordinator at the server owning the given dn.  With a
    [result_cache], remote atomic sub-query results are cached per
    answering server: a fresh entry skips the round trip (the saved
    messages and bytes are counted under
    [dist_cache_saved_messages_total] / [dist_cache_saved_bytes_total]),
    and {!note_update} invalidates by footprint. *)

val note_update : ?subtree:bool -> coordinator -> Dn.t -> unit
(** Tell the coordinator's result cache an entry at [dn] changed on
    some server (no-op without a cache). *)

val involved_servers : coordinator -> Ast.atomic -> server list
(** The owner of the base plus every server whose domain lies inside the
    base's subtree. *)

val eval_atomic : coordinator -> Ast.atomic -> Entry.t Ext_list.t

val eval_atomic_src :
  coordinator -> Ast.atomic -> Entry.t Ext_list.Source.src
(** Streaming merge of the shipped shards: the per-server results are
    still materialized at the coordinator (a shard arrives whole before
    the pipeline can consume it), but the merged union flows out as a
    live source. *)

val eval : ?mode:Engine.mode -> coordinator -> Ast.t -> Entry.t Ext_list.t
(** Evaluate a query tree at this coordinator (default
    [Engine.Streaming]: operator boundaries above the shipped shards
    pipeline, and only the root result is written at the coordinator).
    When the query journal
    ({!Qlog}) is enabled, the coordinator records one event per query —
    attributed to the home server, with per-server shipped
    messages/bytes — and each involved server's engine records its own
    event for the atomic sub-query it answered, attributed to that
    server.  When tracing is on, the coordinator mints one {!Trace} id
    per query and binds it for the query's whole extent: its own merge
    spans ([actor = "coordinator"]), every server's engine spans
    ([actor] = the server name) and all their journal events share the
    id, so the distributed evaluation stitches into one trace
    (exportable with {!Chrome_trace}). *)

val eval_entries : ?mode:Engine.mode -> coordinator -> Ast.t -> Entry.t list

val server_stats : network -> (string * Io_stats.t) list
val reset_all : coordinator -> unit
