(* Primary/secondary replication of domain partitions (Section 3.3).

   "At the time of registration of a domain in the DIF, a primary and
   (perhaps) some secondary directory servers are identified as the
   owners of the hierarchical namespace rooted at the domain entry ...
   Secondary directory servers ensure that one unreachable network will
   not necessarily cut off network directory service" (Section 3.3 and
   footnote 4).

   Each domain is a replica group: one primary that takes the updates,
   k secondaries that replay the primary's update log asynchronously.
   Update routing follows the same longest-suffix domain match as query
   routing; replication traffic (one message per update per secondary)
   is charged to the network's statistics.  Failover promotes the
   most-caught-up secondary; updates not yet replicated at failover time
   are lost — the classic asynchronous-replication trade-off, which the
   tests pin down explicitly. *)

type update =
  | Add of Entry.t
  | Delete of Dn.t  (* leaf delete *)
  | Delete_subtree of Dn.t
  | Modify of Dn.t * Directory.modification list

let update_dn = function
  | Add e -> Entry.dn e
  | Delete d | Delete_subtree d | Modify (d, _) -> d

(* approximate wire size of an update, for byte accounting *)
let update_bytes = function
  | Add e -> Entry.byte_size e
  | Delete d | Delete_subtree d -> String.length (Dn.rev_key d) + 8
  | Modify (d, mods) -> String.length (Dn.rev_key d) + (32 * List.length mods)

type replica = {
  replica_name : string;
  directory : Directory.t;
  mutable applied : int;  (* prefix of the group log replayed here *)
}

type group = {
  domain : Dn.t;
  mutable primary : replica;
  mutable secondaries : replica list;
  mutable log : update list;  (* newest first *)
  mutable log_length : int;
}

type t = { groups : group list; stats : Io_stats.t; block : int }

(* --- Deployment ------------------------------------------------------------ *)

let clone_instance instance =
  (* replicas hold independent directories over the same entries *)
  Directory.create instance

let deploy ?(block = 64) ?(secondaries = 1) instance domains =
  (match domains with
  | [] -> invalid_arg "Replicated.deploy: no domains"
  | _ -> ());
  let base = Dist.deploy ~block instance domains in
  let groups =
    List.map
      (fun (s : Dist.server) ->
        let mk i =
          {
            replica_name =
              (if i = 0 then Printf.sprintf "%s/primary" s.Dist.name
               else Printf.sprintf "%s/secondary%d" s.Dist.name i);
            directory = clone_instance s.Dist.instance;
            applied = 0;
          }
        in
        {
          domain = s.Dist.domain;
          primary = mk 0;
          secondaries = List.init secondaries (fun i -> mk (i + 1));
          log = [];
          log_length = 0;
        })
      base.Dist.servers
  in
  { groups; stats = Io_stats.create (); block }

let group_of t dn =
  let domains = List.map (fun g -> g.domain) t.groups in
  let owner =
    match Dist.owner_domain domains dn with
    | Some d -> d
    | None -> (
        match
          List.sort (fun a b -> Int.compare (Dn.depth a) (Dn.depth b)) domains
        with
        | d :: _ -> d
        | [] -> assert false)
  in
  List.find (fun g -> Dn.equal g.domain owner) t.groups

(* --- Updates ---------------------------------------------------------------- *)

let apply_to directory = function
  | Add e ->
      (* partition roots have no parent on this server *)
      Directory.add ~as_root:true directory e
  | Delete d -> Directory.delete directory d
  | Delete_subtree d -> Directory.delete ~subtree:true directory d
  | Modify (d, mods) -> Directory.modify directory d mods

(* Replication traffic also feeds the metrics registry, labeled per
   replica group, so update/replication load is visible in [:metrics]
   alongside the query-side counters. *)
let m_updates domain =
  Metrics.counter ~help:"updates accepted by primaries"
    ~labels:[ ("domain", Dn.to_string domain) ]
    "repl_updates_total"

let m_messages domain =
  Metrics.counter ~help:"replication messages pushed to secondaries"
    ~labels:[ ("domain", Dn.to_string domain) ]
    "repl_messages_total"

let m_lost domain =
  Metrics.counter ~help:"updates lost at failover"
    ~labels:[ ("domain", Dn.to_string domain) ]
    "repl_lost_updates_total"

(* Route an update to the owning primary; on success it is appended to
   the group's replication log. *)
let update t u =
  let g = group_of t (update_dn u) in
  (* client -> primary *)
  Io_stats.message ~bytes:(update_bytes u) t.stats;
  Metrics.incr (m_updates g.domain);
  match apply_to g.primary.directory u with
  | Ok () ->
      g.log <- u :: g.log;
      g.log_length <- g.log_length + 1;
      g.primary.applied <- g.log_length;
      Ok ()
  | Error e -> Error e

(* --- Replication ------------------------------------------------------------- *)

let lag g r = g.log_length - r.applied

(* Push every pending log entry to every secondary; one message per
   update per secondary.  Replay failures cannot happen (the log
   applied cleanly at the primary and replicas replay in order), but we
   surface them loudly rather than diverge silently. *)
let replicate_group t g =
  List.iter
    (fun r ->
      let pending = lag g r in
      if pending > 0 then
        (* one span per secondary pushed to *)
        Trace.with_span ~detail:r.replica_name ~stats:t.stats "replicate"
          (fun () ->
            let to_apply =
              (* log is newest-first: take the pending prefix, oldest first *)
              List.filteri (fun i _ -> i < pending) g.log |> List.rev
            in
            List.iter
              (fun u ->
                Io_stats.message ~bytes:(update_bytes u) t.stats;
                Metrics.incr (m_messages g.domain);
                match apply_to r.directory u with
                | Ok () -> r.applied <- r.applied + 1
                | Error e ->
                    Fmt.failwith "replication divergence at %s: %a"
                      r.replica_name Directory.pp_error e)
              to_apply))
    g.secondaries

let replicate t = List.iter (replicate_group t) t.groups

let max_lag t =
  List.fold_left
    (fun acc g ->
      List.fold_left (fun acc r -> max acc (lag g r)) acc g.secondaries)
    0 t.groups

(* --- Failover ----------------------------------------------------------------- *)

exception No_secondary of Dn.t

(* The primary of [domain] fails: promote the most-caught-up secondary.
   Log entries beyond the promoted replica's applied point are lost
   (asynchronous replication); the log is truncated to match. *)
let fail_primary t domain =
  let g = List.find (fun g -> Dn.equal g.domain domain) t.groups in
  match
    List.sort (fun a b -> Int.compare b.applied a.applied) g.secondaries
  with
  | [] -> raise (No_secondary domain)
  | best :: rest ->
      let lost = g.log_length - best.applied in
      Metrics.add (m_lost g.domain) lost;
      g.primary <- best;
      g.secondaries <- rest;
      (* drop the lost suffix (newest entries) *)
      g.log <- List.filteri (fun i _ -> i >= lost) g.log;
      g.log_length <- best.applied;
      lost

(* --- Reads -------------------------------------------------------------------- *)

type read_preference = Primary | Any_secondary

let replica_for ?(prefer = Primary) t dn =
  let g = group_of t dn in
  match (prefer, g.secondaries) with
  | Primary, _ | Any_secondary, [] -> g.primary
  | Any_secondary, r :: _ -> r

(* An engine over one replica's current state (rebuild per call; the
   caller caches it as long as no updates intervene). *)
let engine ?prefer t dn =
  let r = replica_for ?prefer t dn in
  Engine.create ~block:t.block (Directory.instance r.directory)

(* All replicas of all groups agree (true after a full replicate). *)
let consistent t =
  List.for_all
    (fun g ->
      let reference = Instance.to_list (Directory.instance g.primary.directory) in
      List.for_all
        (fun r ->
          let other = Instance.to_list (Directory.instance r.directory) in
          List.length reference = List.length other
          && List.for_all2
               (fun a b -> Entry.equal_dn a b && Entry.attrs a = Entry.attrs b)
               reference other)
        g.secondaries)
    t.groups

let pp_status ppf t =
  List.iter
    (fun g ->
      Fmt.pf ppf "%a: primary=%s log=%d@." Dn.pp g.domain
        g.primary.replica_name g.log_length;
      List.iter
        (fun r -> Fmt.pf ppf "  %s lag=%d@." r.replica_name (lag g r))
        g.secondaries)
    t.groups
