(* The LDAP query language as formalized in the paper (Sections 4.2, 8.1).

   An LDAP query has a *single* base entry dn and a *single* scope; only
   the atomic filters (not whole queries) may be combined with the
   boolean operators and (&), or (|), not (!) — "the one material
   difference" from L0.  Theorem 8.1's first inclusion (LDAP < L0) is
   witnessed by queries like Example 4.1, whose operands need different
   bases.

   The filter syntax follows RFC 2254: (&(objectClass=person)(uid=jag...)). *)

type filter =
  | F_atom of Afilter.t
  | F_and of filter list
  | F_or of filter list
  | F_not of filter

type query = { base : Dn.t; scope : Ast.scope; filter : filter }

let rec matches f e =
  match f with
  | F_atom a -> Afilter.matches a e
  | F_and fs -> List.for_all (fun f -> matches f e) fs
  | F_or fs -> List.exists (fun f -> matches f e) fs
  | F_not f -> not (matches f e)

(* Reference evaluation over the instance (mirrors Definition 4.1). *)
let in_scope q e =
  let dn = Entry.dn e in
  match q.scope with
  | Ast.Base -> Dn.equal dn q.base
  | Ast.One -> Dn.equal dn q.base || Dn.is_parent_of ~parent:q.base ~child:dn
  | Ast.Sub -> Dn.is_self_or_descendant_of ~descendant:dn ~ancestor:q.base

let eval instance q =
  Instance.fold
    (fun acc e -> if in_scope q e && matches q.filter e then e :: acc else acc)
    [] instance
  |> List.rev

(* Indexed evaluation: one scan of the base's subtree range. *)
let eval_indexed dn_index q =
  let keep e = matches q.filter e in
  match q.scope with
  | Ast.Base -> Dn_index.scan_base dn_index q.base ~keep
  | Ast.One -> Dn_index.scan_children dn_index q.base ~keep
  | Ast.Sub -> Dn_index.scan_subtree dn_index q.base ~keep

(* --- Translations (Theorem 8.1) ---------------------------------------- *)

(* Every LDAP query is expressible in L0: push the boolean structure of
   the filter up to query level, using set difference against the
   whole-scope query for negation. *)
let to_l0 q =
  let atom f = Ast.Atomic { Ast.base = q.base; scope = q.scope; filter = f } in
  let universe = atom (Afilter.Present Schema.object_class) in
  let rec conv = function
    | F_atom a -> atom a
    | F_not f -> Ast.Diff (universe, conv f)
    | F_and [] -> universe
    | F_and (f :: fs) ->
        List.fold_left (fun acc f -> Ast.And (acc, conv f)) (conv f) fs
    | F_or [] -> Ast.Diff (universe, universe)
    | F_or (f :: fs) ->
        List.fold_left (fun acc f -> Ast.Or (acc, conv f)) (conv f) fs
  in
  conv q.filter

(* Partial inverse: an L0 query collapses to a single LDAP query exactly
   when all its atomic subqueries share one base and scope. *)
let of_l0 (ast : Ast.t) =
  let rec conv = function
    | Ast.Atomic a -> Some (a.Ast.base, a.Ast.scope, F_atom a.Ast.filter)
    | Ast.And (q1, q2) -> combine q1 q2 (fun f1 f2 -> F_and [ f1; f2 ])
    | Ast.Or (q1, q2) -> combine q1 q2 (fun f1 f2 -> F_or [ f1; f2 ])
    | Ast.Diff (q1, q2) -> combine q1 q2 (fun f1 f2 -> F_and [ f1; F_not f2 ])
    | Ast.Hier _ | Ast.Hier3 _ | Ast.Gsel _ | Ast.Eref _ -> None
  and combine q1 q2 mk =
    match (conv q1, conv q2) with
    | Some (b1, s1, f1), Some (b2, s2, f2)
      when Dn.equal b1 b2 && s1 = s2 ->
        Some (b1, s1, mk f1 f2)
    | _ -> None
  in
  Option.map (fun (base, scope, filter) -> { base; scope; filter }) (conv ast)

(* --- RFC 2254-style concrete syntax ------------------------------------- *)

exception Parse_error of string

let rec filter_to_string = function
  | F_atom a -> "(" ^ Afilter.to_string a ^ ")"
  | F_and fs -> "(&" ^ String.concat "" (List.map filter_to_string fs) ^ ")"
  | F_or fs -> "(|" ^ String.concat "" (List.map filter_to_string fs) ^ ")"
  | F_not f -> "(!" ^ filter_to_string f ^ ")"

let to_string q =
  Printf.sprintf "ldap:///%s?%s?%s" (Dn.to_string q.base)
    (Ast.scope_to_string q.scope)
    (filter_to_string q.filter)

let filter_of_string ?schema s =
  let pos = ref 0 in
  let n = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do incr pos done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let rec parse () =
    expect '(';
    skip_ws ();
    let f =
      match (if !pos < n then Some s.[!pos] else None) with
      | Some '&' ->
          incr pos;
          F_and (parse_list ())
      | Some '|' ->
          incr pos;
          F_or (parse_list ())
      | Some '!' ->
          incr pos;
          F_not (parse ())
      | Some _ ->
          let start = !pos in
          while !pos < n && s.[!pos] <> ')' && s.[!pos] <> '(' do incr pos done;
          let text = String.trim (String.sub s start (!pos - start)) in
          (try F_atom (Afilter.of_string ?schema text)
           with Afilter.Parse_error m -> fail m)
      | None -> fail "unexpected end of filter"
    in
    expect ')';
    f
  and parse_list () =
    skip_ws ();
    if !pos < n && s.[!pos] = '(' then
      let f = parse () in
      f :: parse_list ()
    else []
  in
  let f = parse () in
  skip_ws ();
  if !pos <> n then fail "trailing text";
  f

(* Parse an LDAP URL-style query: ldap:///<base>?<scope>?<filter>
   (RFC 2255 shape, host omitted). *)
let of_string ?schema str =
  let str = String.trim str in
  let prefix = "ldap:///" in
  let body =
    if String.length str >= String.length prefix
       && String.sub str 0 (String.length prefix) = prefix
    then String.sub str (String.length prefix) (String.length str - String.length prefix)
    else str
  in
  match String.split_on_char '?' body with
  | [ base; scope; filter ] ->
      let base = Dn.of_string base in
      let scope =
        match Ast.scope_of_string (String.trim scope) with
        | Some s -> s
        | None -> raise (Parse_error ("bad scope " ^ scope))
      in
      { base; scope; filter = filter_of_string ?schema (String.trim filter) }
  | _ -> raise (Parse_error "expected <base>?<scope>?<filter>")
