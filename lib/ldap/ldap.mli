(** The LDAP query language as formalized by the paper (Sections 4.2 and
    8.1): a {e single} base dn, a {e single} scope, and boolean
    combinations of atomic {e filters} (not whole queries) — "the one
    material difference" from L0.

    Also the Theorem 8.1 translations: every LDAP query is expressible
    in L0 ({!to_l0}), and an L0 query collapses to a single LDAP query
    exactly when all its atomic sub-queries share one base and scope
    ({!of_l0}). *)

type filter =
  | F_atom of Afilter.t
  | F_and of filter list
  | F_or of filter list
  | F_not of filter

type query = { base : Dn.t; scope : Ast.scope; filter : filter }

val matches : filter -> Entry.t -> bool

val in_scope : query -> Entry.t -> bool

val eval : Instance.t -> query -> Entry.t list
(** Reference evaluation (mirrors Definition 4.1), in canonical order. *)

val eval_indexed : Dn_index.t -> query -> Entry.t Ext_list.t
(** One accounted scan of the base's scope range. *)

val to_l0 : query -> Ast.t
(** Theorem 8.1 (LDAP <= L0): push the filter's boolean structure to
    query level, with set difference against the whole-scope query for
    negation.  Property-tested to preserve semantics. *)

val of_l0 : Ast.t -> query option
(** Partial inverse: [None] when the query uses several bases/scopes or
    any non-L0 operator. *)

exception Parse_error of string

val filter_to_string : filter -> string
(** RFC 2254 style, e.g. [(&(objectClass=person)(priority<=3))]. *)

val to_string : query -> string
(** LDAP URL style: [ldap:///<base>?<scope>?<filter>]. *)

val filter_of_string : ?schema:Schema.t -> string -> filter
val of_string : ?schema:Schema.t -> string -> query
